//! The executable atomic-multicast specification the engines must
//! refine.
//!
//! [`AbstractAmcast`] is the paper's primitive as a reference state
//! machine: messages move through **pending** (submitted, not yet
//! delivered anywhere) → **committed** (delivered somewhere, hence
//! positioned in the global order) → **delivered** (per process), and
//! the machine accumulates a global partial order over committed
//! messages — the union of every process's consecutive-delivery edges —
//! that must stay acyclic. Genuineness is by construction: a message is
//! only ever deliverable at a process inside its destination set, so an
//! abstract behavior cannot involve a non-addressed process at all.
//!
//! The [`Checker`](crate::Checker) maintains one spec instance per
//! exploration path and maps every concrete `Action::Deliver` to a
//! [`deliver`](AbstractAmcast::deliver) transition. A concrete delivery
//! the spec rejects means the trace is **not a behavior of the
//! specification** — the simulation relation is broken — and the
//! checker reports it under the `refinement` oracle with a minimized
//! schedule. One transition check subsumes the integrity, exactly-once,
//! agreement and acyclic-order oracles (which stay on as cheap
//! fast-fail guards); validity and liveness remain separate because
//! they are properties of whole runs, not single transitions.
//!
//! Crash faults are mirrored through [`truncate`](AbstractAmcast::truncate):
//! a restarting process resumes from its durable delivery prefix, but
//! order edges its pre-crash deliveries contributed are *kept* — the
//! paper's properties are uniform, so even a faulty process's past
//! deliveries constrain everyone else forever.
//!
//! ## Binding concrete values to abstract messages
//!
//! Submissions through `multicast` return their [`ValueId`] up front
//! and are bound eagerly ([`bind`](AbstractAmcast::bind)). Submissions
//! through the client request path get their id assigned deep inside
//! the engine, so they are bound lazily at first delivery, by payload:
//! a delivered payload matches a submission when it is byte-equal or
//! ends with the submitted bytes (the request path wraps commands with
//! a client/request header, leaving the command as the suffix). The
//! scenarios therefore keep payloads non-empty and pairwise distinct.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use multiring_paxos::types::{GroupId, ProcessId, Value, ValueId};

/// One abstract multicast message: destination groups, the processes
/// those groups resolve to, and the submitted payload.
#[derive(Clone, PartialEq, Eq, Debug)]
struct SpecMessage {
    groups: Vec<GroupId>,
    dests: BTreeSet<ProcessId>,
    payload: Bytes,
}

/// The reference atomic-multicast state machine; see the module docs.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AbstractAmcast {
    /// Every submitted message, in submission order (index = message).
    msgs: Vec<SpecMessage>,
    /// Concrete value id → abstract message, filled eagerly for direct
    /// submissions and lazily (first delivery) for request-path ones.
    bound: BTreeMap<ValueId, usize>,
    /// Per-process delivery sequence (indices into `msgs`).
    seq: BTreeMap<ProcessId, Vec<usize>>,
    /// The accumulated global partial order: an edge `a → b` means some
    /// process delivered `a` immediately before `b`.
    edges: BTreeMap<usize, BTreeSet<usize>>,
}

impl AbstractAmcast {
    /// An empty spec instance (no messages submitted).
    pub fn new() -> AbstractAmcast {
        AbstractAmcast::default()
    }

    /// The `amcast(m, γ)` transition: registers a message addressed to
    /// `groups`, whose union of subscribers is `dests`. Returns the
    /// abstract message index for [`bind`](AbstractAmcast::bind).
    pub fn submit(
        &mut self,
        groups: Vec<GroupId>,
        dests: BTreeSet<ProcessId>,
        payload: Bytes,
    ) -> usize {
        self.msgs.push(SpecMessage {
            groups,
            dests,
            payload,
        });
        self.msgs.len() - 1
    }

    /// Eagerly binds a concrete [`ValueId`] to the abstract message at
    /// `msg` (direct `multicast` submissions, whose id is known at
    /// submission time).
    pub fn bind(&mut self, id: ValueId, msg: usize) {
        self.bound.insert(id, msg);
    }

    /// Number of messages submitted so far.
    pub fn submitted(&self) -> usize {
        self.msgs.len()
    }

    /// Number of messages already committed (delivered somewhere).
    pub fn committed(&self) -> usize {
        let delivered: BTreeSet<usize> = self.seq.values().flatten().copied().collect();
        delivered.len()
    }

    /// How many messages `p` has delivered.
    pub fn delivered_at(&self, p: ProcessId) -> usize {
        self.seq.get(&p).map_or(0, Vec::len)
    }

    /// The `deliver(p, m)` transition for a concrete delivery of
    /// `value` at `p`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable divergence description when the
    /// delivery is not a legal spec transition:
    ///
    /// * **integrity** — the value does not trace back to any
    ///   submission (by bound id or payload);
    /// * **genuineness** — `p` is not in the message's destination set;
    /// * **exactly-once** — `p` already delivered this message;
    /// * **partial order** — accepting the delivery would close a cycle
    ///   in the global order (this is how agreement breaches surface:
    ///   two processes delivering two messages in opposite orders form
    ///   a two-edge cycle).
    pub fn deliver(&mut self, p: ProcessId, value: &Value) -> Result<(), String> {
        let m = self.resolve(value).ok_or_else(|| {
            format!(
                "process {} delivered value {:?} that no submission explains (integrity)",
                p.value(),
                value.id,
            )
        })?;
        let msg = &self.msgs[m];
        if !msg.dests.contains(&p) {
            return Err(format!(
                "process {} delivered message #{m} addressed to groups {:?} it is not a \
                 destination of (genuineness)",
                p.value(),
                msg.groups,
            ));
        }
        let seq = self.seq.entry(p).or_default();
        if seq.contains(&m) {
            return Err(format!(
                "process {} delivered message #{m} twice (exactly-once)",
                p.value(),
            ));
        }
        if let Some(&prev) = seq.last() {
            self.edges.entry(prev).or_default().insert(m);
            if let Some(at) = find_cycle(&self.edges) {
                return Err(format!(
                    "delivering message #{m} at process {} closes a cycle in the global \
                     delivery order through message #{at} (acyclic partial order)",
                    p.value(),
                ));
            }
        }
        self.seq.entry(p).or_default().push(m);
        Ok(())
    }

    /// Mirrors a crash + restart from a durable checkpoint: `p`'s
    /// delivery sequence is truncated to its first `keep` entries (the
    /// checkpointed prefix — the concrete delivery log only ever
    /// appends, so a checkpoint is always a prefix). Order edges the
    /// truncated deliveries contributed are kept (uniformity).
    pub fn truncate(&mut self, p: ProcessId, keep: usize) {
        if let Some(seq) = self.seq.get_mut(&p) {
            seq.truncate(keep);
        }
    }

    /// Folds the spec state into a world fingerprint. The checker's
    /// dedup must distinguish states whose *future* refinement verdicts
    /// differ: a crash-truncated delivery history survives only in the
    /// spec's order edges, not in the concrete world state.
    pub fn digest_into(&self, h: &mut multiring_paxos::digest::Fnv1a) {
        h.write_usize(self.msgs.len());
        h.write_usize(self.bound.len());
        for (id, &m) in &self.bound {
            h.write_u64(u64::from(id.proposer.value()));
            h.write_u64(id.seq);
            h.write_usize(m);
        }
        h.write_usize(self.seq.len());
        for (p, seq) in &self.seq {
            h.write_u64(u64::from(p.value()));
            h.write_usize(seq.len());
            for &m in seq {
                h.write_usize(m);
            }
        }
        h.write_usize(self.edges.len());
        for (&a, bs) in &self.edges {
            h.write_usize(a);
            h.write_usize(bs.len());
            for &b in bs {
                h.write_usize(b);
            }
        }
    }

    /// Maps a concrete value to its abstract message: by already-bound
    /// id first, then by payload against unbound submissions (binding
    /// on success).
    fn resolve(&mut self, value: &Value) -> Option<usize> {
        if let Some(&m) = self.bound.get(&value.id) {
            return Some(m);
        }
        let taken: BTreeSet<usize> = self.bound.values().copied().collect();
        let found =
            self.msgs.iter().enumerate().find(|(i, msg)| {
                !taken.contains(i) && payload_matches(&value.payload, &msg.payload)
            })?;
        let m = found.0;
        self.bound.insert(value.id, m);
        Some(m)
    }
}

/// Does a delivered payload correspond to a submitted one? Byte-equal,
/// or carrying it as a suffix (the client request path prepends a
/// fixed-layout client/request header via `encode_command`).
fn payload_matches(delivered: &Bytes, submitted: &Bytes) -> bool {
    !submitted.is_empty()
        && (delivered == submitted
            || (delivered.len() > submitted.len() && delivered.ends_with(submitted)))
}

/// Cycle detection over the (tiny) abstract order graph: returns a
/// message index on a cycle, if any.
fn find_cycle(edges: &BTreeMap<usize, BTreeSet<usize>>) -> Option<usize> {
    let mut color: BTreeMap<usize, u8> = BTreeMap::new();
    for &start in edges.keys() {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((v, done)) = stack.pop() {
            if done {
                color.insert(v, 2);
                continue;
            }
            match color.get(&v).copied().unwrap_or(0) {
                1 => return Some(v),
                2 => continue,
                _ => {}
            }
            color.insert(v, 1);
            stack.push((v, true));
            if let Some(next) = edges.get(&v) {
                for &n in next {
                    match color.get(&n).copied().unwrap_or(0) {
                        1 => return Some(n),
                        2 => {}
                        _ => stack.push((n, false)),
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(p: u32) -> ProcessId {
        ProcessId::new(p)
    }

    fn value(proposer: u32, seq: u64, payload: &'static [u8]) -> Value {
        Value::new(
            ValueId::new(pid(proposer), seq),
            GroupId::new(0),
            Bytes::from_static(payload),
        )
    }

    fn two_dest() -> BTreeSet<ProcessId> {
        [pid(0), pid(1)].into_iter().collect()
    }

    #[test]
    fn agreed_order_is_a_behavior() {
        let mut spec = AbstractAmcast::new();
        let a = spec.submit(vec![GroupId::new(0)], two_dest(), Bytes::from_static(b"a"));
        let b = spec.submit(vec![GroupId::new(0)], two_dest(), Bytes::from_static(b"b"));
        spec.bind(ValueId::new(pid(0), 1), a);
        spec.bind(ValueId::new(pid(0), 2), b);
        for p in [pid(0), pid(1)] {
            spec.deliver(p, &value(0, 1, b"a")).unwrap();
            spec.deliver(p, &value(0, 2, b"b")).unwrap();
        }
        assert_eq!(spec.committed(), 2);
        assert_eq!(spec.delivered_at(pid(0)), 2);
    }

    #[test]
    fn opposite_orders_close_a_cycle() {
        let mut spec = AbstractAmcast::new();
        let a = spec.submit(vec![GroupId::new(0)], two_dest(), Bytes::from_static(b"a"));
        let b = spec.submit(vec![GroupId::new(0)], two_dest(), Bytes::from_static(b"b"));
        spec.bind(ValueId::new(pid(0), 1), a);
        spec.bind(ValueId::new(pid(0), 2), b);
        spec.deliver(pid(0), &value(0, 1, b"a")).unwrap();
        spec.deliver(pid(0), &value(0, 2, b"b")).unwrap();
        spec.deliver(pid(1), &value(0, 2, b"b")).unwrap();
        let err = spec.deliver(pid(1), &value(0, 1, b"a")).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn double_delivery_and_unknown_values_are_rejected() {
        let mut spec = AbstractAmcast::new();
        let a = spec.submit(vec![GroupId::new(0)], two_dest(), Bytes::from_static(b"a"));
        spec.bind(ValueId::new(pid(0), 1), a);
        spec.deliver(pid(0), &value(0, 1, b"a")).unwrap();
        let twice = spec.deliver(pid(0), &value(0, 1, b"a")).unwrap_err();
        assert!(twice.contains("exactly-once"), "{twice}");
        let ghost = spec.deliver(pid(0), &value(9, 9, b"ghost")).unwrap_err();
        assert!(ghost.contains("integrity"), "{ghost}");
    }

    #[test]
    fn delivery_outside_the_destination_set_is_rejected() {
        let mut spec = AbstractAmcast::new();
        let a = spec.submit(vec![GroupId::new(0)], two_dest(), Bytes::from_static(b"a"));
        spec.bind(ValueId::new(pid(0), 1), a);
        let err = spec.deliver(pid(7), &value(0, 1, b"a")).unwrap_err();
        assert!(err.contains("genuineness"), "{err}");
    }

    #[test]
    fn request_path_values_bind_lazily_by_payload_suffix() {
        let mut spec = AbstractAmcast::new();
        spec.submit(
            vec![GroupId::new(0)],
            two_dest(),
            Bytes::from_static(b"cmd"),
        );
        // The engine wraps the command with a 20-byte header and picks
        // its own value id; the suffix match binds it.
        let framed = Bytes::from([&[0u8; 20][..], b"cmd"].concat());
        let v = Value::new(ValueId::new(pid(5), 42), GroupId::new(0), framed);
        spec.deliver(pid(0), &v).unwrap();
        assert_eq!(spec.committed(), 1);
        // The binding sticks: the same id re-resolves to the same
        // message, so re-delivery now violates exactly-once.
        let err = spec.deliver(pid(0), &v).unwrap_err();
        assert!(err.contains("exactly-once"), "{err}");
    }

    #[test]
    fn truncate_reopens_exactly_once_but_keeps_edges() {
        let mut spec = AbstractAmcast::new();
        let a = spec.submit(vec![GroupId::new(0)], two_dest(), Bytes::from_static(b"a"));
        let b = spec.submit(vec![GroupId::new(0)], two_dest(), Bytes::from_static(b"b"));
        spec.bind(ValueId::new(pid(0), 1), a);
        spec.bind(ValueId::new(pid(0), 2), b);
        spec.deliver(pid(0), &value(0, 1, b"a")).unwrap();
        spec.deliver(pid(0), &value(0, 2, b"b")).unwrap();
        // Crash without a checkpoint: the whole log is lost...
        spec.truncate(pid(0), 0);
        // ...and re-delivery in the same order is a behavior again.
        spec.deliver(pid(0), &value(0, 1, b"a")).unwrap();
        spec.deliver(pid(0), &value(0, 2, b"b")).unwrap();
        // But the pre-crash a→b edge still binds other processes.
        spec.deliver(pid(1), &value(0, 2, b"b")).unwrap();
        let err = spec.deliver(pid(1), &value(0, 1, b"a")).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }
}
