//! A deliberately tiny engine used to validate the checker itself.
//!
//! [`ToyEngine`] is a hub-ordered broadcast: every submission is
//! forwarded to the lowest process id (the hub), which assigns a global
//! sequence number and broadcasts the decision; receivers deliver in
//! sequence order. Correct by construction — unless built with one of
//! the sabotaged variants, each of which must be caught by a different
//! part of the checking apparatus:
//!
//! * [`ToyEngine::buggy`] — the hub *skips sending one decision to the
//!   highest process*, a silent delivery drop the **validity** oracle
//!   must catch within a small depth bound.
//! * [`ToyEngine::wedged`] — the hub orders its first value normally
//!   but silently parks every later one behind a retry timer that
//!   re-arms without ever retrying. No safety oracle can object (what
//!   is delivered is delivered correctly); only the **liveness** pass
//!   can, by finding a fair non-progress lasso.
//! * [`ToyEngine::reordering`] — the highest process stashes sequence 1
//!   and plays it *after* sequence 2, a local inversion of the global
//!   order the **refinement** oracle rejects as soon as any other
//!   process exhibits the agreed order.
//!
//! That closes the loop on the whole apparatus: if a sabotage ever goes
//! unnoticed, the oracles (not the engines) are broken.

use std::collections::BTreeMap;

use bytes::Bytes;
use mrp_amcast::engine::AmcastEngine;
use multiring_paxos::config::{single_ring, ClusterConfig};
use multiring_paxos::digest::{DigestInto, Fnv1a};
use multiring_paxos::event::{Action, Event, Message, StateMachine, TimerKind};
use multiring_paxos::node::MulticastError;
use multiring_paxos::types::{
    ConsensusValue, GroupId, InstanceId, ProcessId, RingId, Time, Value, ValueId,
};

use crate::scenario::{Scenario, Submission};

/// The sequence number (1-based) whose decision the buggy hub fails to
/// send to the highest process.
pub const BUGGY_SEQ: u64 = 2;

/// Which sabotage, if any, a [`ToyEngine`] carries.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum ToyMode {
    /// Correct hub-ordered broadcast.
    Correct,
    /// The hub drops the [`BUGGY_SEQ`]-th decision for the highest
    /// process (validity violation).
    DropDecision,
    /// The hub parks every value after the first behind a retry timer
    /// that never retries (liveness violation).
    Wedge,
    /// The highest process delivers sequence 2 before sequence 1
    /// (refinement violation).
    Reorder,
}

/// A hub-ordered broadcast over one group; see the module docs.
#[derive(Debug)]
pub struct ToyEngine {
    me: ProcessId,
    hub: ProcessId,
    subscribers: Vec<ProcessId>,
    /// Hub only: next sequence number to assign.
    next_seq: u64,
    /// Per-submitter value counter (value ids must be unique).
    next_local: u64,
    /// Out-of-order decisions waiting for their predecessors.
    pending: BTreeMap<u64, Value>,
    /// Next sequence number to deliver.
    next_deliver: u64,
    /// Wedged hub only: values parked behind the do-nothing retry.
    parked: Vec<Value>,
    mode: ToyMode,
}

impl ToyEngine {
    /// A correct toy node for a `single_ring` configuration.
    pub fn new(me: ProcessId, config: &ClusterConfig) -> ToyEngine {
        let subscribers = config.subscribers_of(GroupId::new(0));
        let hub = *subscribers.first().expect("toy config has processes");
        ToyEngine {
            me,
            hub,
            subscribers,
            next_seq: 0,
            next_local: 0,
            pending: BTreeMap::new(),
            next_deliver: 1,
            parked: Vec::new(),
            mode: ToyMode::Correct,
        }
    }

    /// Same engine, but the hub drops the [`BUGGY_SEQ`]-th decision for
    /// the highest process.
    pub fn buggy(me: ProcessId, config: &ClusterConfig) -> ToyEngine {
        ToyEngine {
            mode: ToyMode::DropDecision,
            ..ToyEngine::new(me, config)
        }
    }

    /// Same engine, but the hub orders only its first value; later ones
    /// are parked behind a [`TimerKind::RecoveryRetry`] that re-arms
    /// itself forever without retrying anything.
    pub fn wedged(me: ProcessId, config: &ClusterConfig) -> ToyEngine {
        ToyEngine {
            mode: ToyMode::Wedge,
            ..ToyEngine::new(me, config)
        }
    }

    /// Same engine, but the highest process stashes sequence 1 and
    /// delivers it after sequence 2.
    pub fn reordering(me: ProcessId, config: &ClusterConfig) -> ToyEngine {
        ToyEngine {
            mode: ToyMode::Reorder,
            ..ToyEngine::new(me, config)
        }
    }

    fn victim(&self) -> ProcessId {
        *self.subscribers.last().expect("non-empty")
    }

    /// Hub-side: order `value` and broadcast the decision.
    fn order(&mut self, value: Value, out: &mut Vec<Action>) {
        if self.mode == ToyMode::Wedge && self.next_seq >= 1 {
            // Park the value and pretend a retry will handle it. The
            // timer is real and fires fairly; the retry never comes.
            self.parked.push(value);
            out.push(Action::SetTimer {
                after_us: 50_000,
                timer: TimerKind::RecoveryRetry,
            });
            return;
        }
        self.next_seq += 1;
        let seq = self.next_seq;
        let victim = self.victim();
        for &to in &self.subscribers {
            if self.mode == ToyMode::DropDecision && seq == BUGGY_SEQ && to == victim {
                continue;
            }
            out.push(Action::Send {
                to,
                msg: Message::Decision {
                    ring: RingId::new(0),
                    first: InstanceId::new(seq),
                    count: 1,
                    value: Some(ConsensusValue::Values(vec![value.clone()])),
                    hops: 0,
                },
            });
        }
    }

    /// Receiver-side: buffer and release in sequence order — except the
    /// reordering victim, which holds sequence 1 back until sequence 2
    /// has arrived and then plays them inverted.
    fn on_decision(&mut self, seq: u64, value: Value, out: &mut Vec<Action>) {
        self.pending.insert(seq, value);
        if self.mode == ToyMode::Reorder && self.me == self.victim() && self.next_deliver == 1 {
            if !(self.pending.contains_key(&1) && self.pending.contains_key(&2)) {
                return;
            }
            for seq in [2, 1] {
                let value = self.pending.remove(&seq).expect("both present");
                out.push(Action::Deliver {
                    group: GroupId::new(0),
                    instance: InstanceId::new(seq),
                    value,
                });
            }
            self.next_deliver = 3;
        }
        while let Some(value) = self.pending.remove(&self.next_deliver) {
            out.push(Action::Deliver {
                group: GroupId::new(0),
                instance: InstanceId::new(self.next_deliver),
                value,
            });
            self.next_deliver += 1;
        }
    }
}

impl StateMachine for ToyEngine {
    fn on_event(&mut self, _now: Time, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        match event {
            Event::Message {
                msg: Message::Forward { values, .. },
                ..
            } if self.me == self.hub => {
                for v in values {
                    self.order(v, &mut out);
                }
            }
            Event::Message {
                msg:
                    Message::Decision {
                        first,
                        value: Some(ConsensusValue::Values(values)),
                        ..
                    },
                ..
            } => {
                for (i, v) in values.into_iter().enumerate() {
                    self.on_decision(first.value() + i as u64, v, &mut out);
                }
            }
            Event::Timer(TimerKind::RecoveryRetry) if self.mode == ToyMode::Wedge => {
                // The wedge: the "retry" re-arms itself and does
                // nothing else, a fair timer that never makes progress.
                out.push(Action::SetTimer {
                    after_us: 50_000,
                    timer: TimerKind::RecoveryRetry,
                });
            }
            _ => {}
        }
        out
    }

    fn process_id(&self) -> ProcessId {
        self.me
    }
}

impl AmcastEngine for ToyEngine {
    fn multicast(
        &mut self,
        _now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        if groups.is_empty() {
            return Err(MulticastError::NoDestination);
        }
        self.next_local += 1;
        let id = ValueId::new(self.me, self.next_local);
        let value = Value::new(id, groups[0], payload);
        let mut out = Vec::new();
        if self.me == self.hub {
            self.order(value, &mut out);
        } else {
            out.push(Action::Send {
                to: self.hub,
                msg: Message::Forward {
                    ring: RingId::new(0),
                    values: vec![value],
                    hops: 0,
                },
            });
        }
        Ok((id, out))
    }

    fn engine_name(&self) -> &'static str {
        "toy"
    }

    fn state_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(u64::from(self.me.value()));
        h.write_u64(self.next_seq);
        h.write_u64(self.next_local);
        h.write_u64(self.next_deliver);
        h.write_usize(self.pending.len());
        for (&seq, value) in &self.pending {
            h.write_u64(seq);
            value.digest_into(&mut h);
        }
        h.write_usize(self.parked.len());
        for value in &self.parked {
            value.digest_into(&mut h);
        }
        h.finish()
    }
}

/// A three-node toy scenario with `count` submissions spread across the
/// processes; `buggy` selects the delivery-dropping hub.
pub fn toy_scenario(count: u64, buggy: bool) -> Scenario {
    let config = single_ring(3, multiring_paxos::config::RingTuning::default());
    let submissions = (0..count)
        .map(|i| Submission {
            at: ProcessId::new((i % 3) as u32),
            groups: vec![GroupId::new(0)],
            payload: Bytes::from(format!("toy-{i}").into_bytes()),
            via_request: false,
        })
        .collect();
    let factory_config = config.clone();
    Scenario {
        name: if buggy {
            "toy-buggy".into()
        } else {
            "toy".into()
        },
        factory: Box::new(move |p, _recovering| {
            if buggy {
                Box::new(ToyEngine::buggy(p, &factory_config))
            } else {
                Box::new(ToyEngine::new(p, &factory_config))
            }
        }),
        config,
        submissions,
        value_frame_allowed: None,
    }
}

/// Two submissions from the non-hub processes so neither engine-level
/// sabotage needs the hub to submit: the sabotaged behavior is purely
/// in how frames are handled.
fn toy_sabotage_scenario(
    name: &str,
    build: impl Fn(ProcessId, &ClusterConfig) -> ToyEngine + 'static,
) -> Scenario {
    let config = single_ring(3, multiring_paxos::config::RingTuning::default());
    let submissions = (0..2u64)
        .map(|i| Submission {
            at: ProcessId::new((i + 1) as u32),
            groups: vec![GroupId::new(0)],
            payload: Bytes::from(format!("{name}-{i}").into_bytes()),
            via_request: false,
        })
        .collect();
    let factory_config = config.clone();
    Scenario {
        name: name.into(),
        factory: Box::new(move |p, _recovering| Box::new(build(p, &factory_config))),
        config,
        submissions,
        value_frame_allowed: None,
    }
}

/// The wedging hub under two submissions: the first delivers, the
/// second parks forever behind the do-nothing retry. Only the liveness
/// pass (`CheckerConfig::liveness`) can catch it.
pub fn toy_wedge_scenario() -> Scenario {
    toy_sabotage_scenario("toy-wedge", ToyEngine::wedged)
}

/// The reordering victim under two submissions: the highest process
/// plays sequence 2 before sequence 1, which the refinement oracle
/// rejects against the abstract spec's global partial order.
pub fn toy_reorder_scenario() -> Scenario {
    toy_sabotage_scenario("toy-reorder", ToyEngine::reordering)
}
