//! # mrp-check: bounded model checking, liveness and static suites
//!
//! The engines behind [`mrp_amcast::AmcastEngine`] are sans-io state
//! machines: events in, actions out, no clocks, no threads, no
//! non-determinism. That discipline is what makes them *checkable* — a
//! schedule of event deliveries fully determines every state they reach
//! — and this crate is the tooling that cashes the cheque:
//!
//! * [`checker`] — a deterministic bounded model checker. A
//!   [`checker::Checker`] drives N engine nodes through every
//!   interleaving of in-flight events up to a depth bound, pruning with
//!   state-fingerprint deduplication (the engines' `state_digest()`
//!   hook) and sleep-set partial-order reduction, optionally branching
//!   into faults (frame drop/duplication, crash/restart through the
//!   checkpoint surface). Invariant oracles — agreement, exactly-once
//!   integrity, validity, pairwise delivery-order acyclicity, and
//!   genuineness for the white-box engine — run at every state; a
//!   violation is minimized into a replayable [`checker::Schedule`]
//!   a plain `#[test]` can re-execute. With
//!   [`CheckerConfig::liveness`](checker::CheckerConfig) set, the DFS
//!   additionally hunts for *lassos*: cycles over progress-insensitive
//!   state fingerprints in which a process is still owed a delivery yet
//!   every armed timer fired and every in-flight frame was delivered —
//!   a fair non-progress loop, minimized and replayable like any
//!   safety counterexample.
//! * [`spec`] — [`AbstractAmcast`], atomic multicast as the paper
//!   specifies it, as an executable data structure. During exploration
//!   every concrete delivery is mapped to the spec's single `deliver`
//!   transition; a trace the spec rejects is a refinement violation.
//!   The pointwise oracles above stay on as fast-fail guards.
//! * [`scenario`] — canned multi-node deployments (both engines,
//!   multi-group traffic, batching on/off) the checker and the
//!   regression schedules under `schedules/` run against.
//! * [`lint`] — a source-level static pass (no new dependencies) that
//!   rejects sans-io purity violations in the engine crates: wall-clock
//!   reads, thread spawns, order-nondeterministic hash collections,
//!   stray stdout. Run it as `cargo run -p mrp-check --bin lint`.
//! * [`conformance`] — the wire-conformance suite run by the same
//!   binary: codec-tag collision/liveness checks, variant-coverage
//!   checks for the `Message`/`PersistRecord`/`WbMessage` vocabularies
//!   in every function that must be exhaustive over them, pinned
//!   protocol-constant static asserts, and live round-trips of every
//!   `Message` variant through the codec.
//! * [`toy`] — a deliberately small hub-ordered engine with three
//!   sabotaged variants (dropped decision, wedged retry loop,
//!   order-inverting receiver) used to prove the validity, liveness and
//!   refinement detectors each fire and minimize.
//!
//! The `check` binary (`cargo run --release -p mrp-check --bin check`)
//! runs the bounded exploration for both engines with fault branching
//! on and reports explored/pruned state counts, including the reduction
//! factor of dedup + partial-order reduction over a naive DFS. CI runs
//! it twice: a smoke pass, and a deep `--liveness` pass whose exact
//! counts are diffed against the committed `CHECK_baseline.json`
//! (exploration is deterministic; drift fails the build until the
//! baseline is consciously regenerated).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod conformance;
pub mod lint;
pub mod scenario;
pub mod spec;
pub mod toy;

pub use checker::{
    check, replay_schedule, Checker, CheckerConfig, Choice, FaultBudget, ReplayOutcome, Report,
    Schedule, Violation,
};
pub use conformance::{conformance_check, Finding};
pub use lint::{lint_engine_sources, lint_source, Allowlist, Diagnostic};
pub use scenario::{Scenario, Submission};
pub use spec::AbstractAmcast;
