//! # mrp-check: bounded model checking and sans-io purity lints
//!
//! The engines behind [`mrp_amcast::AmcastEngine`] are sans-io state
//! machines: events in, actions out, no clocks, no threads, no
//! non-determinism. That discipline is what makes them *checkable* — a
//! schedule of event deliveries fully determines every state they reach
//! — and this crate is the tooling that cashes the cheque:
//!
//! * [`checker`] — a deterministic bounded model checker. A
//!   [`checker::Checker`] drives N engine nodes through every
//!   interleaving of in-flight events up to a depth bound, pruning with
//!   state-fingerprint deduplication (the engines' `state_digest()`
//!   hook) and sleep-set partial-order reduction, optionally branching
//!   into faults (frame drop/duplication, crash/restart through the
//!   checkpoint surface). Invariant oracles — agreement, exactly-once
//!   integrity, validity, pairwise delivery-order acyclicity, and
//!   genuineness for the white-box engine — run at every state; a
//!   violation is minimized into a replayable [`checker::Schedule`]
//!   a plain `#[test]` can re-execute.
//! * [`scenario`] — canned multi-node deployments (both engines,
//!   multi-group traffic, batching on/off) the checker and the
//!   regression schedules under `schedules/` run against.
//! * [`lint`] — a source-level static pass (no new dependencies) that
//!   rejects sans-io purity violations in the engine crates: wall-clock
//!   reads, thread spawns, order-nondeterministic hash collections,
//!   stray stdout. Run it as `cargo run -p mrp-check --bin lint`.
//! * [`toy`] — a deliberately small (and optionally deliberately buggy)
//!   hub-ordered engine used to prove the checker's oracles fire.
//!
//! The `check` binary (`cargo run -p mrp-check --bin check`) runs the
//! bounded exploration for both engines with fault branching on and
//! reports explored/pruned state counts, including the reduction factor
//! of dedup + partial-order reduction over a naive DFS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod lint;
pub mod scenario;
pub mod toy;

pub use checker::{
    check, replay_schedule, Checker, CheckerConfig, Choice, FaultBudget, ReplayOutcome, Report,
    Schedule, Violation,
};
pub use lint::{lint_engine_sources, lint_source, Allowlist, Diagnostic};
pub use scenario::{Scenario, Submission};
