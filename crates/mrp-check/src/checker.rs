//! The bounded model checker: exhaustive interleaving exploration over
//! sans-io engine nodes.
//!
//! A [`Checker`] instantiates one engine per process of a
//! [`Scenario`], pumps the deterministic
//! start-up exchange to quiescence, applies the scenario's submissions,
//! and then explores **every schedule** of the resulting in-flight
//! choices — message deliveries, timer firings and (within a
//! [`FaultBudget`]) frame drops, frame duplications, checkpoints,
//! crashes and restarts — up to a configurable depth.
//!
//! Exploration is *stateless*: engines are not `Clone`, so each search
//! node is reconstructed by replaying its choice prefix from the root.
//! Two prunings keep the tree tractable:
//!
//! * **state-fingerprint deduplication** — a world digest built from
//!   every engine's [`state_digest`](mrp_amcast::AmcastEngine::state_digest)
//!   plus channels, timers, clocks and budgets; a state already visited
//!   with a compatible sleep set is not re-expanded;
//! * **sleep-set partial-order reduction** — independent choices
//!   (disjoint node/channel footprints) are explored in only one order.
//!
//! Correctness is judged against the executable specification in
//! [`spec`](crate::spec): every concrete delivery is mapped to an
//! [`AbstractAmcast`] transition, and a delivery the spec rejects is a
//! `refinement` violation — the trace is not a behavior of the paper's
//! primitive. The ad-hoc safety oracles (exactly-once, agreement,
//! delivery-order acyclicity, genuineness; validity at fault-free
//! quiescence) stay on as cheap fast-fail guards. With
//! [`CheckerConfig::liveness`] set, the checker additionally hunts
//! *lassos*: a cycle over progress-insensitive world digests in which
//! some submitted message never delivers, every armed timer fires and
//! every in-flight frame is delivered — a bounded non-progress
//! counterexample. Any violation is minimized into a replayable
//! [`Schedule`] that a plain `#[test]` can re-execute with
//! [`replay_schedule`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use bytes::Bytes;
use mrp_amcast::engine::AmcastEngine;
use mrp_amcast::telemetry::RecoveryCounters;
use mrp_amcast::wbcast::{frame_references_value, WBCAST_WIRE_ID};
use multiring_paxos::digest::{timer_kind_key, DigestInto, Fnv1a};
use multiring_paxos::event::{Action, Event, Message, TimerKind};
use multiring_paxos::types::{GroupId, ProcessId, RingId, Time, ValueId};

use crate::scenario::Scenario;
use crate::spec::AbstractAmcast;

/// A node's armed timers, keyed by [`timer_kind_key`] so the map order
/// is deterministic (`TimerKind` itself is not `Ord`).
type TimerTable = BTreeMap<(u8, u16), (TimerKind, Time)>;

/// One scheduling decision: the atomic unit of a [`Schedule`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Choice {
    /// Deliver the frame at the head of channel `from → to`.
    Deliver {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
    },
    /// Fire an armed timer at `node` (the virtual clock jumps to the
    /// timer's due time if it has not reached it yet).
    Fire {
        /// Process whose timer fires.
        node: ProcessId,
        /// Which timer.
        timer: TimerKind,
    },
    /// Fault: silently discard the frame at the head of `from → to`.
    Drop {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
    },
    /// Fault: enqueue a second copy of the frame at the head of
    /// `from → to` (models link-level retransmission duplicates).
    Duplicate {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
    },
    /// Take a durable checkpoint at `node` through the engine's
    /// checkpoint surface (watermark + opaque state) and let it trim.
    Checkpoint {
        /// Process checkpointing.
        node: ProcessId,
    },
    /// Fault: crash `node` — its engine, timers and undelivered inbound
    /// frames vanish; in-flight frames it already sent survive.
    Crash {
        /// Process crashing.
        node: ProcessId,
    },
    /// Restart a crashed `node` from its last durable checkpoint (or
    /// from scratch if it never checkpointed).
    Restart {
        /// Process restarting.
        node: ProcessId,
    },
}

impl Choice {
    /// Canonical exploration order (also the `Ord` key).
    fn sort_key(&self) -> (u8, u64, u64, u8, u16) {
        match *self {
            Choice::Deliver { from, to } => {
                (0, u64::from(from.value()), u64::from(to.value()), 0, 0)
            }
            Choice::Fire { node, timer } => {
                let (tag, ring) = timer_kind_key(timer);
                (1, u64::from(node.value()), 0, tag, ring)
            }
            Choice::Drop { from, to } => (2, u64::from(from.value()), u64::from(to.value()), 0, 0),
            Choice::Duplicate { from, to } => {
                (3, u64::from(from.value()), u64::from(to.value()), 0, 0)
            }
            Choice::Checkpoint { node } => (4, u64::from(node.value()), 0, 0, 0),
            Choice::Crash { node } => (5, u64::from(node.value()), 0, 0, 0),
            Choice::Restart { node } => (6, u64::from(node.value()), 0, 0, 0),
        }
    }

    /// The footprint used by the independence relation:
    /// `(engine node touched, channel front touched, wide)`. `wide`
    /// choices (crash/restart) conflict with everything.
    fn footprint(&self) -> (Option<ProcessId>, Option<(ProcessId, ProcessId)>, bool) {
        match *self {
            Choice::Deliver { from, to } => (Some(to), Some((from, to)), false),
            Choice::Fire { node, .. } => (Some(node), None, false),
            Choice::Drop { from, to } | Choice::Duplicate { from, to } => {
                (None, Some((from, to)), false)
            }
            Choice::Checkpoint { node } => (Some(node), None, false),
            Choice::Crash { node } | Choice::Restart { node } => (Some(node), None, true),
        }
    }

    /// Budget class: choices drawing on the same bounded fault budget
    /// can disable each other and are therefore never independent.
    fn budget_class(&self) -> Option<u8> {
        match self {
            Choice::Drop { .. } => Some(0),
            Choice::Duplicate { .. } => Some(1),
            Choice::Checkpoint { .. } => Some(2),
            Choice::Crash { .. } | Choice::Restart { .. } => Some(3),
            _ => None,
        }
    }
}

impl PartialOrd for Choice {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Choice {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

/// `true` when the two choices may not commute (shared engine, shared
/// channel front, shared budget, or a wide choice): the sleep-set
/// reduction only reorders *independent* pairs.
fn dependent(a: &Choice, b: &Choice) -> bool {
    let (na, ca, wa) = a.footprint();
    let (nb, cb, wb) = b.footprint();
    if wa || wb {
        return true;
    }
    if let (Some(x), Some(y)) = (a.budget_class(), b.budget_class()) {
        if x == y {
            return true;
        }
    }
    matches!((na, nb), (Some(x), Some(y)) if x == y)
        || matches!((ca, cb), (Some(x), Some(y)) if x == y)
}

fn timer_name(timer: TimerKind) -> String {
    match timer {
        TimerKind::Delta(r) => format!("delta:{}", r.value()),
        TimerKind::FlushLinks(r) => format!("flush:{}", r.value()),
        TimerKind::GapCheck(r) => format!("gap:{}", r.value()),
        TimerKind::TrimTick(r) => format!("trim:{}", r.value()),
        TimerKind::ProposalResend(r) => format!("resend:{}", r.value()),
        TimerKind::CheckpointTick => "ckpt-tick".into(),
        TimerKind::RecoveryRetry => "recovery".into(),
        TimerKind::SubmitFlush => "submit-flush".into(),
    }
}

fn parse_timer(text: &str) -> Result<TimerKind, String> {
    let (name, ring) = match text.split_once(':') {
        Some((n, r)) => {
            let ring: u16 = r
                .parse()
                .map_err(|_| format!("bad ring in timer `{text}`"))?;
            (n, ring)
        }
        None => (text, 0),
    };
    let ring = RingId::new(ring);
    Ok(match name {
        "delta" => TimerKind::Delta(ring),
        "flush" => TimerKind::FlushLinks(ring),
        "gap" => TimerKind::GapCheck(ring),
        "trim" => TimerKind::TrimTick(ring),
        "resend" => TimerKind::ProposalResend(ring),
        "ckpt-tick" => TimerKind::CheckpointTick,
        "recovery" => TimerKind::RecoveryRetry,
        "submit-flush" => TimerKind::SubmitFlush,
        other => return Err(format!("unknown timer `{other}`")),
    })
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Choice::Deliver { from, to } => write!(f, "deliver {}>{}", from.value(), to.value()),
            Choice::Fire { node, timer } => {
                write!(f, "fire {} {}", node.value(), timer_name(timer))
            }
            Choice::Drop { from, to } => write!(f, "drop {}>{}", from.value(), to.value()),
            Choice::Duplicate { from, to } => write!(f, "dup {}>{}", from.value(), to.value()),
            Choice::Checkpoint { node } => write!(f, "ckpt {}", node.value()),
            Choice::Crash { node } => write!(f, "crash {}", node.value()),
            Choice::Restart { node } => write!(f, "restart {}", node.value()),
        }
    }
}

fn parse_pair(text: &str) -> Result<(ProcessId, ProcessId), String> {
    let (a, b) = text
        .split_once('>')
        .ok_or_else(|| format!("expected `from>to`, got `{text}`"))?;
    let from: u32 = a
        .trim()
        .parse()
        .map_err(|_| format!("bad process id `{a}`"))?;
    let to: u32 = b
        .trim()
        .parse()
        .map_err(|_| format!("bad process id `{b}`"))?;
    Ok((ProcessId::new(from), ProcessId::new(to)))
}

impl Choice {
    /// Parses the one-line textual form produced by `Display`
    /// (`deliver 0>1`, `fire 0 delta:0`, `drop 2>0`, `dup 1>2`,
    /// `ckpt 1`, `crash 2`, `restart 2`).
    pub fn parse(line: &str) -> Result<Choice, String> {
        let mut it = line.split_whitespace();
        let verb = it.next().ok_or_else(|| "empty choice".to_string())?;
        let arg = it
            .next()
            .ok_or_else(|| format!("`{verb}` needs an argument"))?;
        let choice = match verb {
            "deliver" => {
                let (from, to) = parse_pair(arg)?;
                Choice::Deliver { from, to }
            }
            "drop" => {
                let (from, to) = parse_pair(arg)?;
                Choice::Drop { from, to }
            }
            "dup" => {
                let (from, to) = parse_pair(arg)?;
                Choice::Duplicate { from, to }
            }
            "fire" => {
                let node: u32 = arg.parse().map_err(|_| format!("bad process id `{arg}`"))?;
                let t = it
                    .next()
                    .ok_or_else(|| "`fire` needs a timer name".to_string())?;
                Choice::Fire {
                    node: ProcessId::new(node),
                    timer: parse_timer(t)?,
                }
            }
            "ckpt" | "crash" | "restart" => {
                let node: u32 = arg.parse().map_err(|_| format!("bad process id `{arg}`"))?;
                let node = ProcessId::new(node);
                match verb {
                    "ckpt" => Choice::Checkpoint { node },
                    "crash" => Choice::Crash { node },
                    _ => Choice::Restart { node },
                }
            }
            other => return Err(format!("unknown choice verb `{other}`")),
        };
        if let Some(extra) = it.next() {
            return Err(format!("trailing token `{extra}` after `{line}`"));
        }
        Ok(choice)
    }
}

/// A replayable sequence of [`Choice`]s, the checker's counterexample
/// format and the on-disk format of the regression schedules under
/// `schedules/`.
///
/// The textual form is one choice per line; `#` starts a comment, blank
/// lines are ignored, and a final bare `drain` directive asks the
/// replayer to deterministically run the system to quiescence after the
/// scripted prefix (delivering every frame and firing due timers, up to
/// a bounded number of steps).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schedule {
    /// The scripted choices, in order.
    pub steps: Vec<Choice>,
    /// Whether to drain to quiescence after the scripted prefix.
    pub drain: bool,
}

impl Schedule {
    /// Parses the textual schedule format.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut steps = Vec::new();
        let mut drain = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if drain {
                return Err(format!(
                    "line {}: `drain` must be the last directive",
                    idx + 1
                ));
            }
            if line == "drain" {
                drain = true;
                continue;
            }
            steps.push(Choice::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
        }
        Ok(Schedule { steps, drain })
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.steps {
            writeln!(f, "{c}")?;
        }
        if self.drain {
            writeln!(f, "drain")?;
        }
        Ok(())
    }
}

/// How many fault choices of each kind the checker may branch into
/// along a single schedule. All-zero (the default) explores only
/// fault-free interleavings.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultBudget {
    /// Frame drops.
    pub drops: u32,
    /// Frame duplications.
    pub dups: u32,
    /// Node crashes (each crashed node may also restart once).
    pub crashes: u32,
    /// Durable checkpoints (not faults per se, but scheduled like them
    /// so trim interacts with everything else).
    pub checkpoints: u32,
}

/// Exploration bounds and pruning switches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckerConfig {
    /// Maximum schedule length (choices per path).
    pub depth: usize,
    /// Maximum explicit timer firings per node along one path (timers
    /// re-arm forever; this keeps the tree finite).
    pub max_timer_fires: u32,
    /// Fault branching budget.
    pub faults: FaultBudget,
    /// Enable state-fingerprint deduplication.
    pub dedup: bool,
    /// Enable sleep-set partial-order reduction.
    pub por: bool,
    /// Hard cap on expanded states (0 = unlimited); sets
    /// [`Report::capped`] when hit.
    pub max_states: u64,
    /// Enable bounded liveness checking: detect lassos — cycles over
    /// progress-insensitive world digests along the DFS path in which
    /// some submitted message never delivers although every armed timer
    /// fires and every in-flight frame is delivered inside the cycle.
    /// Reported under the `liveness` oracle.
    pub liveness: bool,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        Self {
            depth: 10,
            max_timer_fires: 2,
            faults: FaultBudget::default(),
            dedup: true,
            por: true,
            max_states: 500_000,
            liveness: false,
        }
    }
}

/// An invariant breach, with the minimized schedule that reproduces it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Which oracle fired (`refinement`, `liveness`, `exactly-once`,
    /// `agreement`, `acyclic-order`, `validity`, `genuineness`).
    pub oracle: String,
    /// Human-readable description of the breach.
    pub detail: String,
    /// A schedule that reproduces the breach from the scenario's
    /// initial state via [`replay_schedule`].
    pub schedule: Schedule,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} violated: {}", self.oracle, self.detail)?;
        write!(f, "schedule:\n{}", self.schedule)
    }
}

/// Exploration statistics and outcome.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Report {
    /// Search states expanded (worlds materialized).
    pub explored: u64,
    /// Branches pruned by state-fingerprint deduplication.
    pub pruned_dedup: u64,
    /// Branches pruned by the sleep-set reduction.
    pub pruned_sleep: u64,
    /// Paths cut by the depth bound.
    pub depth_cutoffs: u64,
    /// Terminal states with nothing left to schedule.
    pub quiescent: u64,
    /// Whether the `max_states` cap stopped the search early.
    pub capped: bool,
    /// Liveness mode only: digest-repeat states examined as potential
    /// lassos (most are benign — a cycle the fairness conditions or the
    /// progress obligation rule out).
    pub lasso_candidates: u64,
    /// The first (minimized) violation found, if any.
    pub violation: Option<Violation>,
}

/// Result of replaying a [`Schedule`] against a scenario.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The violation hit during replay, if any (oracles run after every
    /// step, exactly as during exploration).
    pub violation: Option<Violation>,
    /// Per-node delivery logs, in delivery order.
    pub delivered: BTreeMap<ProcessId, Vec<(GroupId, ValueId)>>,
    /// Per-node recovery counters at the end of the replay (crashed
    /// nodes report their last pre-crash snapshot as default).
    pub recovery: BTreeMap<ProcessId, RecoveryCounters>,
    /// Whether all channels were empty when the replay finished.
    pub quiescent: bool,
    /// Every choice executed, including steps appended by `drain`.
    pub executed: Vec<Choice>,
    /// The world fingerprint at the end of the replay: two replays of
    /// the same schedule must agree on it (digest stability).
    pub final_digest: u64,
}

// ---------------------------------------------------------------------
// The world: N engines + channels + timers + virtual clocks.
// ---------------------------------------------------------------------

struct Durable {
    watermark: mrp_amcast::engine::Watermark,
    state: Bytes,
    delivered: Vec<(GroupId, ValueId)>,
}

struct NodeSlot {
    /// `None` while crashed — but also, transiently, while the engine
    /// is taken out of the slot to be fed an event. `down` is the
    /// authoritative liveness flag.
    engine: Option<Box<dyn AmcastEngine>>,
    /// `true` between a crash and the matching restart. Checked by
    /// [`World::route`] instead of `engine.is_none()`: routing happens
    /// mid-`feed`, when a live node's engine is momentarily out of its
    /// slot, and a self-send from there must not be mistaken for a
    /// frame to a crashed process.
    down: bool,
    delivered: Vec<(GroupId, ValueId)>,
    durable: Option<Durable>,
    /// This node's virtual clock (per-node so timer firings at
    /// different nodes commute; engines never compare clocks across
    /// processes).
    now: Time,
    fires: u32,
    ever_crashed: bool,
}

struct World<'a> {
    scenario: &'a Scenario,
    nodes: BTreeMap<ProcessId, NodeSlot>,
    /// FIFO per ordered pair; self-sends travel through `(p, p)`.
    channels: BTreeMap<(ProcessId, ProcessId), VecDeque<Message>>,
    /// Armed timers per node, keyed by [`timer_kind_key`].
    timers: BTreeMap<ProcessId, TimerTable>,
    budget: FaultBudget,
    /// Values each node must eventually deliver (fault-free validity).
    expected: BTreeMap<ProcessId, usize>,
    any_fault: bool,
    violation: Option<(String, String)>,
    /// The abstract reference machine this path must refine: every
    /// concrete delivery is checked as a spec transition.
    spec: AbstractAmcast,
}

impl<'a> World<'a> {
    /// Builds the initial state: engines started, start-up exchange
    /// pumped to quiescence, submissions applied (their frames left in
    /// flight for the exploration to schedule).
    fn build(scenario: &'a Scenario, faults: FaultBudget) -> Result<World<'a>, String> {
        let mut w = World {
            scenario,
            nodes: BTreeMap::new(),
            channels: BTreeMap::new(),
            timers: BTreeMap::new(),
            budget: faults,
            expected: BTreeMap::new(),
            any_fault: false,
            violation: None,
            spec: AbstractAmcast::new(),
        };
        let pids: Vec<ProcessId> = scenario.config.processes().into_iter().collect();
        for &p in &pids {
            w.nodes.insert(
                p,
                NodeSlot {
                    engine: Some((scenario.factory)(p, false)),
                    delivered: Vec::new(),
                    durable: None,
                    now: Time::ZERO,
                    fires: 0,
                    down: false,
                    ever_crashed: false,
                },
            );
        }
        for &p in &pids {
            w.feed(p, Event::Start);
        }
        // The start-up exchange (ring Phase 1, sequencer epochs) is the
        // same under every delivery order we would explore; pump it
        // deterministically so exploration starts at the interesting
        // frontier. Timers stay armed but do not fire here.
        w.pump();
        for (i, sub) in scenario.submissions.iter().enumerate() {
            let at = sub.at;
            // Register the submission with the abstract spec first:
            // deliveries can happen while the submission's own frames
            // are still being applied.
            let dests: BTreeSet<ProcessId> = sub
                .groups
                .iter()
                .flat_map(|&g| scenario.config.subscribers_of(g))
                .collect();
            let spec_msg = w
                .spec
                .submit(sub.groups.clone(), dests, sub.payload.clone());
            if sub.via_request {
                let msg = Message::Request {
                    client: multiring_paxos::types::ClientId::new(9_000 + i as u64),
                    request: 1,
                    groups: sub.groups.clone(),
                    payload: sub.payload.clone(),
                };
                w.feed(at, Event::Message { from: at, msg });
            } else {
                let now = w.nodes[&at].now;
                let mut engine = w
                    .nodes
                    .get_mut(&at)
                    .and_then(|s| s.engine.take())
                    .ok_or_else(|| format!("submitter {} not alive", at.value()))?;
                let res = engine.multicast(now, &sub.groups, sub.payload.clone());
                w.nodes.get_mut(&at).expect("slot exists").engine = Some(engine);
                let (id, actions) = res.map_err(|e| format!("submission {i} rejected: {e:?}"))?;
                // Direct submissions reveal their value id up front:
                // bind it eagerly so the spec never has to guess.
                w.spec.bind(id, spec_msg);
                w.apply(at, actions);
            }
            for (p, count) in w.expected_for(&sub.groups) {
                *w.expected.entry(p).or_insert(0) += count;
            }
        }
        // A violation during setup (e.g. genuineness on a submission's
        // own sends) stays recorded in `w.violation`: the caller
        // surfaces it as a violation with an empty schedule.
        Ok(w)
    }

    /// Delivers frames in deterministic (first non-empty channel)
    /// order until none remain: collapses the start-up exchange, whose
    /// interleavings are not interesting, into one canonical run. No
    /// timers fire here.
    fn pump(&mut self) {
        for _ in 0..100_000 {
            let next = self
                .channels
                .iter()
                .find(|((_, to), q)| {
                    !q.is_empty() && self.nodes.get(to).is_some_and(|s| s.engine.is_some())
                })
                .map(|(&(from, to), _)| (from, to));
            let Some((from, to)) = next else { return };
            let msg = self
                .channels
                .get_mut(&(from, to))
                .and_then(VecDeque::pop_front)
                .expect("channel just observed non-empty");
            self.feed(to, Event::Message { from, msg });
        }
        panic!("start-up exchange did not quiesce within 100000 deliveries");
    }

    /// How many of this submission's deliveries each node owes: 1 for
    /// every node subscribed to at least one addressed group.
    fn expected_for(&self, groups: &[GroupId]) -> BTreeMap<ProcessId, usize> {
        let mut out = BTreeMap::new();
        let mut dests: BTreeSet<ProcessId> = BTreeSet::new();
        for &g in groups {
            dests.extend(self.scenario.config.subscribers_of(g));
        }
        for p in dests {
            out.insert(p, 1);
        }
        out
    }

    /// Feeds one event to `pid`'s engine and applies every resulting
    /// action; persists complete inline (the checker models a durable,
    /// instantaneous store), so `PersistDone` events chain in-place.
    fn feed(&mut self, pid: ProcessId, event: Event) {
        let Some(mut engine) = self.nodes.get_mut(&pid).and_then(|s| s.engine.take()) else {
            return;
        };
        let mut queue = VecDeque::new();
        queue.push_back(event);
        while let Some(ev) = queue.pop_front() {
            let now = self.nodes[&pid].now;
            for action in engine.on_event(now, ev) {
                self.apply_one(pid, action, &mut queue);
            }
        }
        self.nodes.get_mut(&pid).expect("slot exists").engine = Some(engine);
    }

    /// Applies actions produced outside `feed` (multicast, trim,
    /// resume); persist completions chain through the engine.
    fn apply(&mut self, pid: ProcessId, actions: Vec<Action>) {
        let mut queue = VecDeque::new();
        for action in actions {
            self.apply_one(pid, action, &mut queue);
        }
        while let Some(ev) = queue.pop_front() {
            // Re-enter the engine for the chained persist completions.
            let Some(mut engine) = self.nodes.get_mut(&pid).and_then(|s| s.engine.take()) else {
                return;
            };
            let now = self.nodes[&pid].now;
            for action in engine.on_event(now, ev) {
                self.apply_one(pid, action, &mut queue);
            }
            self.nodes.get_mut(&pid).expect("slot exists").engine = Some(engine);
        }
    }

    fn apply_one(&mut self, pid: ProcessId, action: Action, queue: &mut VecDeque<Event>) {
        match action {
            Action::Send { to, msg } => self.route(pid, to, msg),
            Action::SetTimer { after_us, timer } => {
                let due = self.nodes[&pid].now.plus(after_us);
                self.timers
                    .entry(pid)
                    .or_default()
                    .insert(timer_kind_key(timer), (timer, due));
            }
            Action::Persist { token, .. } => queue.push_back(Event::PersistDone(token)),
            Action::TrimStorage { .. } => {}
            Action::Deliver { group, value, .. } => {
                // The refinement oracle: a delivery the abstract spec
                // rejects means this trace is not a spec behavior.
                if let Err(detail) = self.spec.deliver(pid, &value) {
                    if self.violation.is_none() {
                        self.violation = Some(("refinement".into(), detail));
                    }
                }
                let slot = self.nodes.get_mut(&pid).expect("slot exists");
                slot.delivered.push((group, value.id));
            }
            Action::Respond { .. } => {}
        }
    }

    /// Routes one frame; sends to crashed processes vanish (their
    /// connections are down), everything else queues FIFO — including
    /// self-sends, which the engines already require to be deferred.
    fn route(&mut self, from: ProcessId, to: ProcessId, msg: Message) {
        self.genuineness_check(to, &msg);
        if self.nodes.get(&to).is_none_or(|s| s.down) {
            return;
        }
        self.channels.entry((from, to)).or_default().push_back(msg);
    }

    /// The genuineness oracle, checked at send time: with a configured
    /// allow-set, no frame that references a submitted value's payload
    /// may travel to a process outside it. Recurses into coalesced
    /// batches.
    fn genuineness_check(&mut self, to: ProcessId, msg: &Message) {
        let Some(allowed) = &self.scenario.value_frame_allowed else {
            return;
        };
        if allowed.contains(&to) || self.violation.is_some() {
            return;
        }
        if message_carries_value(msg) {
            self.violation = Some((
                "genuineness".into(),
                format!(
                    "a value-bearing frame was sent to process {}, outside the addressed \
                     groups' process set",
                    to.value()
                ),
            ));
        }
    }

    /// All schedulable choices in canonical order.
    fn enabled(&self, cfg: &CheckerConfig) -> Vec<Choice> {
        let mut out = Vec::new();
        for (&(from, to), q) in &self.channels {
            if !q.is_empty() && self.nodes.get(&to).is_some_and(|s| s.engine.is_some()) {
                out.push(Choice::Deliver { from, to });
            }
        }
        for (&p, slot) in &self.nodes {
            if slot.engine.is_some() && slot.fires < cfg.max_timer_fires {
                if let Some(timers) = self.timers.get(&p) {
                    for &(timer, _) in timers.values() {
                        out.push(Choice::Fire { node: p, timer });
                    }
                }
            }
        }
        if self.budget.drops > 0 || self.budget.dups > 0 {
            for (&(from, to), q) in &self.channels {
                if q.is_empty() {
                    continue;
                }
                if self.budget.drops > 0 {
                    out.push(Choice::Drop { from, to });
                }
                if self.budget.dups > 0 {
                    out.push(Choice::Duplicate { from, to });
                }
            }
        }
        for (&p, slot) in &self.nodes {
            if slot.engine.is_some() {
                if self.budget.checkpoints > 0 {
                    out.push(Choice::Checkpoint { node: p });
                }
                if self.budget.crashes > 0 {
                    out.push(Choice::Crash { node: p });
                }
            } else {
                out.push(Choice::Restart { node: p });
            }
        }
        out.sort();
        out
    }

    /// Executes one choice. `Err` means the choice is not applicable in
    /// this state (only possible when replaying an external or shrunken
    /// schedule; exploration only steps enabled choices).
    fn step(&mut self, choice: Choice) -> Result<(), String> {
        match choice {
            Choice::Deliver { from, to } => {
                let msg = self.pop(from, to)?;
                if self.nodes.get(&to).is_some_and(|s| s.engine.is_some()) {
                    self.feed(to, Event::Message { from, msg });
                } else {
                    return Err(format!("deliver to crashed node {}", to.value()));
                }
            }
            Choice::Fire { node, timer } => {
                let due = self
                    .timers
                    .get_mut(&node)
                    .and_then(|t| t.remove(&timer_kind_key(timer)))
                    .ok_or_else(|| format!("timer {} not armed", timer_name(timer)))?
                    .1;
                let slot = self.nodes.get_mut(&node).ok_or("no such node")?;
                if slot.engine.is_none() {
                    return Err(format!("fire on crashed node {}", node.value()));
                }
                slot.now = slot.now.max(due);
                slot.fires += 1;
                self.feed(node, Event::Timer(timer));
            }
            Choice::Drop { from, to } => {
                self.pop(from, to)?;
                self.budget.drops = self.budget.drops.checked_sub(1).ok_or("drop budget")?;
                self.any_fault = true;
            }
            Choice::Duplicate { from, to } => {
                let q = self
                    .channels
                    .get_mut(&(from, to))
                    .ok_or("no such channel")?;
                let front = q.front().cloned().ok_or("empty channel")?;
                q.push_back(front);
                self.budget.dups = self.budget.dups.checked_sub(1).ok_or("dup budget")?;
                self.any_fault = true;
            }
            Choice::Checkpoint { node } => {
                let mut engine = self
                    .nodes
                    .get_mut(&node)
                    .and_then(|s| s.engine.take())
                    .ok_or_else(|| format!("checkpoint on crashed node {}", node.value()))?;
                let watermark = engine.watermark();
                let state = engine.checkpoint_state();
                let now = self.nodes[&node].now;
                let actions = engine.trim(now, &watermark);
                let slot = self.nodes.get_mut(&node).expect("slot exists");
                slot.durable = Some(Durable {
                    watermark,
                    state,
                    delivered: slot.delivered.clone(),
                });
                slot.engine = Some(engine);
                self.apply(node, actions);
                self.budget.checkpoints = self
                    .budget
                    .checkpoints
                    .checked_sub(1)
                    .ok_or("ckpt budget")?;
            }
            Choice::Crash { node } => {
                let slot = self.nodes.get_mut(&node).ok_or("no such node")?;
                if slot.engine.take().is_none() {
                    return Err(format!("node {} already crashed", node.value()));
                }
                slot.down = true;
                slot.ever_crashed = true;
                self.timers.remove(&node);
                // Undelivered inbound frames die with the connections.
                for ((_, to), q) in &mut self.channels {
                    if *to == node {
                        q.clear();
                    }
                }
                self.budget.crashes = self.budget.crashes.checked_sub(1).ok_or("crash budget")?;
                self.any_fault = true;
            }
            Choice::Restart { node } => {
                let slot = self.nodes.get_mut(&node).ok_or("no such node")?;
                if slot.engine.is_some() {
                    return Err(format!("node {} is not crashed", node.value()));
                }
                slot.down = false;
                let mut engine = (self.scenario.factory)(node, true);
                match &slot.durable {
                    Some(d) => {
                        engine.install_checkpoint(&d.watermark, &d.state);
                        slot.delivered = d.delivered.clone();
                    }
                    None => slot.delivered.clear(),
                }
                slot.engine = Some(engine);
                // Mirror the crash in the spec: the delivery sequence
                // resumes from the durable prefix (order edges persist
                // — uniformity).
                let keep = slot.delivered.len();
                self.spec.truncate(node, keep);
                self.feed(node, Event::Start);
                let now = self.nodes[&node].now;
                let mut engine = self
                    .nodes
                    .get_mut(&node)
                    .and_then(|s| s.engine.take())
                    .expect("just restarted");
                let actions = engine.resume(now);
                self.nodes.get_mut(&node).expect("slot exists").engine = Some(engine);
                self.apply(node, actions);
            }
        }
        Ok(())
    }

    fn pop(&mut self, from: ProcessId, to: ProcessId) -> Result<Message, String> {
        self.channels
            .get_mut(&(from, to))
            .and_then(VecDeque::pop_front)
            .ok_or_else(|| format!("channel {}>{} empty", from.value(), to.value()))
    }

    /// Deterministically delivers every frame until quiescence (first
    /// non-empty channel first), collecting the executed choices. When
    /// deliveries alone stall, due timers fire (earliest due first) to
    /// unblock protocol rounds that need a tick. Bounded by `max_steps`.
    fn drain(&mut self, max_steps: usize, executed: &mut Vec<Choice>) {
        let mut fires = 0usize;
        for _ in 0..max_steps {
            if self.violation.is_some() {
                return;
            }
            let deliver = self
                .channels
                .iter()
                .find(|((_, to), q)| {
                    !q.is_empty() && self.nodes.get(to).is_some_and(|s| s.engine.is_some())
                })
                .map(|(&(from, to), _)| Choice::Deliver { from, to });
            let choice = match deliver {
                Some(c) => c,
                None => {
                    if self.validity_met() || fires >= max_steps / 2 {
                        return;
                    }
                    // Fire the earliest-due armed timer anywhere.
                    let next = self
                        .timers
                        .iter()
                        .flat_map(|(&p, ts)| ts.values().map(move |&(timer, due)| (due, p, timer)))
                        .filter(|(_, p, _)| self.nodes.get(p).is_some_and(|s| s.engine.is_some()))
                        .min_by_key(|&(due, p, timer)| (due, p, timer_kind_key(timer)));
                    match next {
                        Some((_, node, timer)) => {
                            fires += 1;
                            Choice::Fire { node, timer }
                        }
                        None => return,
                    }
                }
            };
            if self.step(choice).is_err() {
                return;
            }
            executed.push(choice);
            self.check_safety();
        }
    }

    fn validity_met(&self) -> bool {
        self.expected.iter().all(|(p, &want)| {
            self.nodes
                .get(p)
                .is_some_and(|s| s.engine.is_none() || s.delivered.len() >= want)
        })
    }

    /// Runs the always-on safety oracles (exactly-once, pairwise
    /// agreement, global acyclicity); records the first breach.
    fn check_safety(&mut self) {
        if self.violation.is_some() {
            return;
        }
        // Exactly-once: no node delivers the same value id twice.
        for (&p, slot) in &self.nodes {
            let mut seen = BTreeSet::new();
            for &(_, id) in &slot.delivered {
                if !seen.insert(id) {
                    self.violation = Some((
                        "exactly-once".into(),
                        format!("process {} delivered value {:?} twice", p.value(), id),
                    ));
                    return;
                }
            }
        }
        // Agreement on relative order: any two values delivered by two
        // processes appear in the same relative order at both.
        let orders: Vec<(ProcessId, BTreeMap<ValueId, usize>)> = self
            .nodes
            .iter()
            .map(|(&p, s)| {
                let idx = s
                    .delivered
                    .iter()
                    .enumerate()
                    .map(|(i, &(_, id))| (id, i))
                    .collect();
                (p, idx)
            })
            .collect();
        for (i, (pa, a)) in orders.iter().enumerate() {
            for (pb, b) in orders.iter().skip(i + 1) {
                let common: Vec<ValueId> =
                    a.keys().filter(|id| b.contains_key(id)).copied().collect();
                for (x, &u) in common.iter().enumerate() {
                    for &v in common.iter().skip(x + 1) {
                        if (a[&u] < a[&v]) != (b[&u] < b[&v]) {
                            self.violation = Some((
                                "agreement".into(),
                                format!(
                                    "processes {} and {} deliver values {u:?} and {v:?} in \
                                     opposite orders",
                                    pa.value(),
                                    pb.value()
                                ),
                            ));
                            return;
                        }
                    }
                }
            }
        }
        // Acyclicity of the union of delivery orders (catches cycles
        // through three or more processes that pairwise checks miss).
        let mut edges: BTreeMap<ValueId, BTreeSet<ValueId>> = BTreeMap::new();
        for slot in self.nodes.values() {
            for w in slot.delivered.windows(2) {
                edges.entry(w[0].1).or_default().insert(w[1].1);
            }
        }
        if let Some(cycle_at) = find_cycle(&edges) {
            self.violation = Some((
                "acyclic-order".into(),
                format!("global delivery order has a cycle through value {cycle_at:?}"),
            ));
        }
    }

    /// The validity oracle: at fault-free quiescence, every live node
    /// has delivered every value addressed to a group it subscribes to.
    fn check_validity(&mut self) {
        if self.violation.is_some() || self.any_fault {
            return;
        }
        for (&p, &want) in &self.expected {
            let got = self.nodes.get(&p).map_or(0, |s| s.delivered.len());
            if got < want {
                self.violation = Some((
                    "validity".into(),
                    format!(
                        "process {} delivered {got} of {want} values addressed to its \
                         subscriptions at quiescence",
                        p.value()
                    ),
                ));
                return;
            }
        }
    }

    /// Fingerprint of everything that influences future behavior:
    /// engine digests, clocks, channels, timers, delivery logs, durable
    /// checkpoints, remaining budgets and the abstract spec state.
    fn digest(&self) -> u64 {
        self.digest_with(false)
    }

    /// The progress-insensitive fingerprint the lasso detector cycles
    /// over: like [`digest`](World::digest) but without the per-node
    /// clocks, fire counters and timer due times — all monotonically
    /// advancing, so a wedged protocol revisits the *same* liveness
    /// digest while its full digest keeps changing.
    fn liveness_digest(&self) -> u64 {
        self.digest_with(true)
    }

    fn digest_with(&self, progress_insensitive: bool) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.nodes.len());
        for (&p, slot) in &self.nodes {
            h.write_u64(u64::from(p.value()));
            if !progress_insensitive {
                h.write_u64(slot.now.as_micros());
                h.write_u64(u64::from(slot.fires));
            }
            match &slot.engine {
                Some(e) => {
                    h.write_u8(1);
                    h.write_u64(e.state_digest());
                }
                None => h.write_u8(0),
            }
            slot.delivered.digest_into(&mut h);
            match &slot.durable {
                Some(d) => {
                    h.write_u8(1);
                    d.watermark.marks.digest_into(&mut h);
                    h.write_u64(u64::from(d.watermark.cursor_group));
                    h.write_u64(u64::from(d.watermark.cursor_used));
                    d.state.digest_into(&mut h);
                    d.delivered.digest_into(&mut h);
                }
                None => h.write_u8(0),
            }
        }
        h.write_usize(self.channels.values().filter(|q| !q.is_empty()).count());
        for (&(from, to), q) in &self.channels {
            if q.is_empty() {
                continue;
            }
            h.write_u64(u64::from(from.value()));
            h.write_u64(u64::from(to.value()));
            q.digest_into(&mut h);
        }
        h.write_usize(self.timers.len());
        for (&p, timers) in &self.timers {
            h.write_u64(u64::from(p.value()));
            h.write_usize(timers.len());
            for (&(tag, ring), &(_, due)) in timers {
                h.write_u8(tag);
                h.write_u64(u64::from(ring));
                if !progress_insensitive {
                    h.write_u64(due.as_micros());
                }
            }
        }
        for b in [
            self.budget.drops,
            self.budget.dups,
            self.budget.crashes,
            self.budget.checkpoints,
        ] {
            h.write_u64(u64::from(b));
        }
        h.write_u8(u8::from(self.any_fault));
        self.spec.digest_into(&mut h);
        h.finish()
    }

    /// Judges a digest-repeating DFS segment as a non-progress lasso.
    /// `segment` is the choice sequence between the two states with
    /// equal [`liveness_digest`](World::liveness_digest)s; `self` is
    /// the state at the cycle's (re-)entry point. Returns the violation
    /// detail when all of the following hold:
    ///
    /// * some live node still owes expected deliveries (a submitted
    ///   message never delivers),
    /// * every node is up (a crashed node explains any stall — the
    ///   `restart` choice, not the protocol, is what is being starved),
    /// * every timer armed at the cycle state fired inside the segment
    ///   and every non-empty channel was delivered from inside it (weak
    ///   fairness: the Δ-paced retry/orphan machinery got its chance).
    ///
    /// Budget-consuming choices cannot occur inside a candidate segment
    /// at all: budgets only decrease and are part of the digest, so the
    /// endpoints would not match.
    fn lasso_violation(&self, segment: &[Choice]) -> Option<String> {
        if segment.is_empty() {
            return None;
        }
        if !self.nodes.values().all(|s| s.engine.is_some() && !s.down) {
            return None;
        }
        let owed: Vec<String> = self
            .expected
            .iter()
            .filter_map(|(&p, &want)| {
                let got = self.nodes.get(&p).map_or(0, |s| s.delivered.len());
                (got < want).then(|| format!("p{} delivered {got}/{want}", p.value()))
            })
            .collect();
        if owed.is_empty() {
            return None;
        }
        for (&p, timers) in &self.timers {
            for &(timer, _) in timers.values() {
                let fired = segment.iter().any(|c| {
                    matches!(c, Choice::Fire { node, timer: t }
                        if *node == p && timer_kind_key(*t) == timer_kind_key(timer))
                });
                if !fired {
                    return None;
                }
            }
        }
        for (&(from, to), q) in &self.channels {
            if q.is_empty() {
                continue;
            }
            let served = segment
                .iter()
                .any(|c| matches!(c, Choice::Deliver { from: f, to: t } if *f == from && *t == to));
            if !served {
                return None;
            }
        }
        Some(format!(
            "non-progress cycle of {} step(s): {} although every armed timer fired and \
             every in-flight frame was delivered inside the cycle",
            segment.len(),
            owed.join(", "),
        ))
    }
}

/// Does this frame (or any frame inside a coalesced batch) reference a
/// multicast value? Only white-box engine frames are classified — the
/// genuineness property is specific to that engine.
fn message_carries_value(msg: &Message) -> bool {
    match msg {
        Message::Batch(inner) => inner.iter().any(message_carries_value),
        Message::Engine { engine, payload } if *engine == WBCAST_WIRE_ID => {
            frame_references_value(payload.clone())
        }
        _ => false,
    }
}

fn find_cycle(edges: &BTreeMap<ValueId, BTreeSet<ValueId>>) -> Option<ValueId> {
    // Iterative three-color DFS over the (tiny) value graph.
    let mut color: BTreeMap<ValueId, u8> = BTreeMap::new();
    for &start in edges.keys() {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((v, done)) = stack.pop() {
            if done {
                color.insert(v, 2);
                continue;
            }
            match color.get(&v).copied().unwrap_or(0) {
                1 => return Some(v),
                2 => continue,
                _ => {}
            }
            color.insert(v, 1);
            stack.push((v, true));
            if let Some(next) = edges.get(&v) {
                for &n in next {
                    match color.get(&n).copied().unwrap_or(0) {
                        1 => return Some(n),
                        2 => {}
                        _ => stack.push((n, false)),
                    }
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// The checker: stateless DFS with dedup + sleep sets.
// ---------------------------------------------------------------------

/// Number of deterministic steps the quiescence drain may take when
/// closing out a terminal state for the validity oracle.
const DRAIN_STEPS: usize = 400;

/// A bounded model checker over one [`Scenario`].
///
/// Engines are rebuilt and the choice prefix replayed for every search
/// node (stateless search), so the scenario factory must be
/// deterministic — which is exactly the sans-io contract the
/// [`lint`](crate::lint) pass enforces.
pub struct Checker<'a> {
    scenario: &'a Scenario,
    cfg: CheckerConfig,
    report: Report,
    /// digest → sleep sets it was expanded with (subset rule).
    seen: BTreeMap<u64, Vec<BTreeSet<Choice>>>,
    /// Liveness mode: the progress-insensitive digests of every prefix
    /// of the current DFS path (index i = prefix of length i), scanned
    /// for repeats — a repeat is a lasso candidate.
    live_stack: Vec<u64>,
}

impl fmt::Debug for Checker<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("scenario", &self.scenario.name)
            .field("cfg", &self.cfg)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl<'a> Checker<'a> {
    /// Creates a checker for `scenario` with the given bounds.
    pub fn new(scenario: &'a Scenario, cfg: CheckerConfig) -> Self {
        Self {
            scenario,
            cfg,
            report: Report::default(),
            seen: BTreeMap::new(),
            live_stack: Vec::new(),
        }
    }

    /// Runs the bounded exploration and returns the report. On a
    /// violation the offending schedule is minimized before being
    /// returned; exploration stops at the first violation.
    pub fn run(&mut self) -> Report {
        let mut path = Vec::new();
        self.live_stack.clear();
        if let Err(v) = self.explore(&mut path, BTreeSet::new()) {
            let minimized = self.minimize(v);
            self.report.violation = Some(minimized);
        }
        self.report.clone()
    }

    /// Replays `path` from the initial state; `Err` carries the first
    /// violation (with the prefix that reaches it as its schedule).
    fn replay(&self, path: &[Choice]) -> Result<(World<'a>, usize), Violation> {
        let mut world = World::build(self.scenario, self.cfg.faults)
            .unwrap_or_else(|e| panic!("scenario `{}` failed setup: {e}", self.scenario.name));
        world.check_safety();
        if let Some((oracle, detail)) = world.violation.clone() {
            return Err(Violation {
                oracle,
                detail,
                schedule: Schedule::default(),
            });
        }
        for (i, &c) in path.iter().enumerate() {
            if let Err(e) = world.step(c) {
                // Only reachable when shrinking hands us a stale prefix.
                return Err(Violation {
                    oracle: "inapplicable".into(),
                    detail: e,
                    schedule: Schedule {
                        steps: path[..i].to_vec(),
                        drain: false,
                    },
                });
            }
            world.check_safety();
            if let Some((oracle, detail)) = world.violation.clone() {
                return Err(Violation {
                    oracle,
                    detail,
                    schedule: Schedule {
                        steps: path[..=i].to_vec(),
                        drain: false,
                    },
                });
            }
        }
        Ok((world, path.len()))
    }

    fn explore(
        &mut self,
        path: &mut Vec<Choice>,
        sleep: BTreeSet<Choice>,
    ) -> Result<(), Violation> {
        if self.cfg.max_states > 0 && self.report.explored >= self.cfg.max_states {
            self.report.capped = true;
            return Ok(());
        }
        let (world, _) = self.replay(path)?;
        self.report.explored += 1;
        if self.cfg.liveness {
            let ld = world.liveness_digest();
            // A repeat against any shorter prefix of the current path
            // is a cycle; the earliest match gives the longest segment,
            // which the fairness conditions judge most precisely (the
            // minimizer shrinks the counterexample afterwards).
            if let Some(j) = self.live_stack.iter().position(|&d| d == ld) {
                self.report.lasso_candidates += 1;
                if let Some(detail) = world.lasso_violation(&path[j..]) {
                    return Err(Violation {
                        oracle: "liveness".into(),
                        detail,
                        schedule: Schedule {
                            steps: path.clone(),
                            drain: false,
                        },
                    });
                }
            }
            self.live_stack.push(ld);
            let res = self.expand(path, sleep, world);
            self.live_stack.pop();
            res
        } else {
            self.expand(path, sleep, world)
        }
    }

    /// The expansion half of [`explore`](Checker::explore): dedup, the
    /// depth/quiescence close-out and recursion into child choices.
    fn expand(
        &mut self,
        path: &mut Vec<Choice>,
        sleep: BTreeSet<Choice>,
        mut world: World<'a>,
    ) -> Result<(), Violation> {
        if self.cfg.dedup {
            let d = world.digest();
            let entries = self.seen.entry(d).or_default();
            if entries.iter().any(|s| s.is_subset(&sleep)) {
                self.report.pruned_dedup += 1;
                return Ok(());
            }
            entries.retain(|s| !sleep.is_subset(s));
            entries.push(sleep.clone());
        }
        let enabled = world.enabled(&self.cfg);
        let choices: Vec<Choice> = if self.cfg.por {
            let kept: Vec<Choice> = enabled
                .iter()
                .filter(|c| !sleep.contains(c))
                .copied()
                .collect();
            self.report.pruned_sleep += (enabled.len() - kept.len()) as u64;
            kept
        } else {
            enabled
        };
        if path.len() >= self.cfg.depth || choices.is_empty() {
            if path.len() >= self.cfg.depth {
                self.report.depth_cutoffs += 1;
            } else {
                self.report.quiescent += 1;
            }
            // Close out: drain deterministically and assert validity on
            // fault-free paths. The drained world is discarded (the
            // next sibling replays from the root anyway).
            if !world.any_fault {
                let mut executed = Vec::new();
                world.drain(DRAIN_STEPS, &mut executed);
                world.check_validity();
                if let Some((oracle, detail)) = world.violation.clone() {
                    // The drain is deterministic, so the counterexample
                    // records only the scripted prefix plus the `drain`
                    // directive — the replayer re-derives the rest and
                    // re-asserts validity at quiescence.
                    return Err(Violation {
                        oracle,
                        detail,
                        schedule: Schedule {
                            steps: path.clone(),
                            drain: true,
                        },
                    });
                }
            }
            return Ok(());
        }
        let mut slept = sleep;
        for c in choices {
            let child_sleep: BTreeSet<Choice> = slept
                .iter()
                .filter(|x| !dependent(x, &c))
                .copied()
                .collect();
            path.push(c);
            let res = self.explore(path, child_sleep);
            path.pop();
            res?;
            slept.insert(c);
        }
        Ok(())
    }

    /// Greedy delta-debugging shrink: one backward pass dropping each
    /// choice whose removal keeps the violation (same oracle)
    /// reproducible. A single pass bounds minimization at `O(n)`
    /// replays; validity violations found at quiescence close-out are
    /// re-detected by draining the shortened prefix.
    fn minimize(&self, violation: Violation) -> Violation {
        let oracle = violation.oracle.clone();
        let mut best = violation;
        let mut i = best.schedule.steps.len();
        while i > 0 {
            i -= 1;
            if i >= best.schedule.steps.len() {
                continue;
            }
            let mut candidate: Vec<Choice> = best.schedule.steps.clone();
            candidate.remove(i);
            if let Some(v) = self.reproduce(&candidate, &oracle) {
                best = v;
            }
        }
        best
    }

    /// Replays `candidate` (plus a validity close-out drain when
    /// applicable) and returns the violation if `oracle` reproduces.
    fn reproduce(&self, candidate: &[Choice], oracle: &str) -> Option<Violation> {
        if oracle == "liveness" {
            return self.reproduce_liveness(candidate);
        }
        match self.replay(candidate) {
            Err(v) if v.oracle == oracle => Some(v),
            Err(_) => None,
            Ok((mut world, _)) => {
                if oracle != "validity" || world.any_fault {
                    return None;
                }
                let mut sink = Vec::new();
                world.drain(DRAIN_STEPS, &mut sink);
                world.check_validity();
                match world.violation.clone() {
                    Some((o, detail)) if o == oracle => Some(Violation {
                        oracle: o,
                        detail,
                        schedule: Schedule {
                            steps: candidate.to_vec(),
                            drain: true,
                        },
                    }),
                    _ => None,
                }
            }
        }
    }

    /// Replays `candidate` with lasso detection after every step (same
    /// fault budgets as the exploration, so the digests agree) and
    /// returns the first liveness violation, trimmed to the prefix that
    /// closes the cycle.
    fn reproduce_liveness(&self, candidate: &[Choice]) -> Option<Violation> {
        let mut world = World::build(self.scenario, self.cfg.faults).ok()?;
        world.check_safety();
        if world.violation.is_some() {
            return None;
        }
        let mut stack = vec![world.liveness_digest()];
        for (i, &c) in candidate.iter().enumerate() {
            if world.step(c).is_err() {
                return None;
            }
            world.check_safety();
            if world.violation.is_some() {
                return None;
            }
            let ld = world.liveness_digest();
            if let Some(j) = stack.iter().position(|&d| d == ld) {
                if let Some(detail) = world.lasso_violation(&candidate[j..=i]) {
                    return Some(Violation {
                        oracle: "liveness".into(),
                        detail,
                        schedule: Schedule {
                            steps: candidate[..=i].to_vec(),
                            drain: false,
                        },
                    });
                }
            }
            stack.push(ld);
        }
        None
    }
}

/// Convenience: explore `scenario` under `cfg` and return the report.
pub fn check(scenario: &Scenario, cfg: CheckerConfig) -> Report {
    Checker::new(scenario, cfg).run()
}

/// Replays a [`Schedule`] against a scenario, running the safety
/// oracles after every step; with [`Schedule::drain`] set, the system
/// is then driven deterministically to quiescence and the validity
/// oracle asserted (fault-free replays only).
///
/// # Errors
///
/// Fails when a scripted choice is not applicable in the state it is
/// reached in (wrong channel, dead node, unarmed timer) — i.e. the
/// schedule no longer matches the protocol's behavior.
pub fn replay_schedule(scenario: &Scenario, schedule: &Schedule) -> Result<ReplayOutcome, String> {
    let mut world = World::build(
        scenario,
        FaultBudget {
            // Replays are scripts, not searches: let them perform any fault
            // the schedule asks for.
            drops: u32::MAX,
            dups: u32::MAX,
            crashes: u32::MAX,
            checkpoints: u32::MAX,
        },
    )?;
    world.check_safety();
    let mut executed = Vec::new();
    // Scripted liveness counterexamples (lassos) are re-detected during
    // replay, so a checked-in `.sched` for a stall reproduces like any
    // safety schedule does.
    let mut live_stack = vec![world.liveness_digest()];
    for (i, &c) in schedule.steps.iter().enumerate() {
        if world.violation.is_some() {
            break;
        }
        world
            .step(c)
            .map_err(|e| format!("step {} (`{c}`): {e}", i + 1))?;
        executed.push(c);
        world.check_safety();
        if world.violation.is_none() {
            let ld = world.liveness_digest();
            if let Some(j) = live_stack.iter().position(|&d| d == ld) {
                if let Some(detail) = world.lasso_violation(&executed[j..]) {
                    world.violation = Some(("liveness".into(), detail));
                }
            }
            live_stack.push(ld);
        }
    }
    if schedule.drain && world.violation.is_none() {
        world.drain(DRAIN_STEPS, &mut executed);
        if !world.any_fault {
            world.check_validity();
        } else {
            // A scripted fault still demands eventual delivery from the
            // survivors: assert validity over live nodes only.
            world.check_validity_live();
        }
    }
    let violation = world.violation.clone().map(|(oracle, detail)| Violation {
        oracle,
        detail,
        schedule: Schedule {
            steps: executed.clone(),
            drain: false,
        },
    });
    let final_digest = world.digest();
    let quiescent = world.channels.values().all(VecDeque::is_empty);
    let delivered = world
        .nodes
        .iter()
        .map(|(&p, s)| (p, s.delivered.clone()))
        .collect();
    let recovery = world
        .nodes
        .iter()
        .map(|(&p, s)| {
            let c = s
                .engine
                .as_ref()
                .map(|e| e.recovery_counters())
                .unwrap_or_default();
            (p, c)
        })
        .collect();
    Ok(ReplayOutcome {
        violation,
        delivered,
        recovery,
        quiescent,
        executed,
        final_digest,
    })
}

impl World<'_> {
    /// Validity restricted to never-crashed nodes: what a faulty run
    /// still owes (uniformity for survivors).
    fn check_validity_live(&mut self) {
        if self.violation.is_some() {
            return;
        }
        for (&p, &want) in &self.expected {
            let Some(slot) = self.nodes.get(&p) else {
                continue;
            };
            if slot.ever_crashed || slot.engine.is_none() {
                continue;
            }
            if slot.delivered.len() < want {
                self.violation = Some((
                    "validity".into(),
                    format!(
                        "surviving process {} delivered {} of {} values addressed to its \
                         subscriptions after drain",
                        p.value(),
                        slot.delivered.len(),
                        want
                    ),
                ));
                return;
            }
        }
    }
}
