//! Source-level sans-io purity lints for the engine crates.
//!
//! The engines must stay deterministic, replayable state machines —
//! that is what the model checker's stateless re-execution and the
//! simulator's reproducibility rest on. This pass rejects the ways that
//! discipline usually erodes:
//!
//! | rule              | rejects                                        |
//! |-------------------|------------------------------------------------|
//! | `wall-clock`      | `Instant::now`, `SystemTime` — time must come in through [`Event`](multiring_paxos::event::Event)s |
//! | `thread`          | `std::thread`, `thread::spawn` — concurrency belongs to the runtime |
//! | `hash-collections`| `HashMap`, `HashSet` — iteration order is seeded per process; use `BTreeMap`/`BTreeSet` |
//! | `stdout`          | `println!`, `print!`, `dbg!` — engines report through actions and telemetry (`eprintln!` is allowed for operator warnings) |
//! | `rand`            | `thread_rng`, `rand::` — randomness must be injected |
//!
//! Comments and string literals are stripped before matching, matching
//! stops at the first `#[cfg(test)]` (test modules may use whatever
//! they like), and two escape hatches exist: an allowlist file
//! (`crates/mrp-check/lint.allow`, one `rule path-suffix` pair per
//! line) and an inline `lint:allow(rule)` marker in a comment on the
//! offending line. No dependencies, no proc macros: plain substring
//! scanning with word boundaries, fast enough to run on every CI push
//! via `cargo run -p mrp-check --bin lint`.

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding: `file:line` plus the rule and offending text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// File the violation is in (as given to the linter).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`wall-clock`, `thread`, ...).
    pub rule: &'static str,
    /// The pattern that matched.
    pub pattern: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] `{}` — {}",
            self.file, self.line, self.rule, self.pattern, self.snippet
        )
    }
}

/// The rule table: `(rule, patterns)`.
const RULES: &[(&str, &[&str])] = &[
    ("wall-clock", &["Instant::now", "SystemTime"]),
    ("thread", &["std::thread", "thread::spawn"]),
    ("hash-collections", &["HashMap", "HashSet"]),
    ("stdout", &["println!", "print!", "dbg!"]),
    ("rand", &["thread_rng", "rand::"]),
];

/// Path-suffix exemptions, loaded from `lint.allow`.
///
/// Each non-comment line is `rule path-suffix`: the named rule is
/// suppressed in any file whose path ends with the suffix. Keeping the
/// file tiny and reviewed is the point — every entry is a documented
/// exception to the sans-io discipline.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses the allowlist format (`rule path-suffix` lines, `#`
    /// comments).
    ///
    /// # Errors
    ///
    /// Fails on a malformed line or an unknown rule name.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let rule = it.next().expect("non-empty line");
            let suffix = it
                .next()
                .ok_or_else(|| format!("lint.allow line {}: missing path suffix", idx + 1))?;
            if !RULES.iter().any(|(r, _)| *r == rule) {
                return Err(format!(
                    "lint.allow line {}: unknown rule `{rule}`",
                    idx + 1
                ));
            }
            if let Some(extra) = it.next() {
                return Err(format!(
                    "lint.allow line {}: trailing token `{extra}`",
                    idx + 1
                ));
            }
            entries.push((rule.to_string(), suffix.to_string()));
        }
        Ok(Allowlist { entries })
    }

    /// Is `rule` exempted for `file`?
    pub fn permits(&self, rule: &str, file: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, suffix)| r == rule && file.ends_with(suffix.as_str()))
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Strips comments and string/char literals from one file, preserving
/// line structure so diagnostics keep their line numbers. Handles line
/// and (nested) block comments, escaped strings, raw strings and the
/// char-literal/lifetime ambiguity well enough for this codebase.
/// Shared with the [`conformance`](crate::conformance) suite.
pub(crate) fn strip(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    let mut block_depth = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if block_depth > 0 {
            if c == '*' && next == Some('/') {
                block_depth -= 1;
                i += 2;
                continue;
            }
            if c == '/' && next == Some('*') {
                block_depth += 1;
                i += 2;
                continue;
            }
            if c == '\n' {
                out.push('\n');
            }
            i += 1;
            continue;
        }
        match c {
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                block_depth = 1;
                i += 2;
            }
            'r' | 'b'
                if !matches!(out.chars().last(), Some(p) if is_ident(p))
                    && raw_string_start(&chars, i).is_some() =>
            {
                let (body_start, hashes) = raw_string_start(&chars, i).expect("checked");
                i = skip_raw_string(&chars, body_start, hashes, &mut out);
            }
            '"' => {
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            out.push('\n');
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: 'x' / '\n' are literals,
                // 'a as in &'a is a lifetime (no closing quote ahead).
                if next == Some('\\') {
                    i += 2; // opening quote + backslash
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if chars.get(i + 2).copied() == Some('\'') {
                    i += 3;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// If position `i` starts a raw (byte) string (`r"`, `r#"`, `br#"`,
/// ...), returns `(index of first body char, hash count)`.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j).copied() == Some('b') {
        j += 1;
    }
    if chars.get(j).copied() != Some('r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j).copied() == Some('"') {
        Some((j + 1, hashes))
    } else {
        None
    }
}

fn skip_raw_string(chars: &[char], mut i: usize, hashes: usize, out: &mut String) -> usize {
    while i < chars.len() {
        if chars[i] == '\n' {
            out.push('\n');
        }
        if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Lints one source file's text. `file` is used for diagnostics and
/// allowlist matching only — nothing is read from disk.
pub fn lint_source(file: &str, source: &str, allow: &Allowlist) -> Vec<Diagnostic> {
    let stripped = strip(source);
    let mut out = Vec::new();
    let raw_lines: Vec<&str> = source.lines().collect();
    for (idx, line) in stripped.lines().enumerate() {
        // Test modules may thread, print and hash at will.
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        for &(rule, patterns) in RULES {
            if allow.permits(rule, file) || raw.contains(&format!("lint:allow({rule})")) {
                continue;
            }
            for &pattern in patterns {
                if contains_word(line, pattern) {
                    out.push(Diagnostic {
                        file: file.to_string(),
                        line: idx + 1,
                        rule,
                        pattern,
                        snippet: raw.trim().to_string(),
                    });
                }
            }
        }
    }
    out
}

/// Substring match with word boundaries: the character before the match
/// must not be part of an identifier (so `eprintln!` does not trip
/// `println!`), and when the pattern ends in an identifier character,
/// neither may the character after (so a `HashMapShim` name would not
/// trip `HashMap` — but `HashMap::new` and `HashMap<K, V>` do).
pub(crate) fn contains_word(line: &str, pattern: &str) -> bool {
    let bytes = line.as_bytes();
    let pat = pattern.as_bytes();
    let check_suffix = pattern.chars().last().is_some_and(is_ident);
    let mut start = 0;
    while let Some(pos) = line[start..].find(pattern) {
        let at = start + pos;
        let pre_ok = at == 0 || !is_ident(bytes[at - 1] as char);
        let end = at + pat.len();
        let post_ok = !check_suffix || end >= bytes.len() || !is_ident(bytes[end] as char);
        if pre_ok && post_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// The crates whose sources must stay sans-io pure.
const ENGINE_SRC_DIRS: &[&str] = &["crates/multiring-paxos/src", "crates/mrp-amcast/src"];

/// Walks the engine crates under `repo_root` and lints every `.rs`
/// file, using the allowlist at `crates/mrp-check/lint.allow` when
/// present. Returns the diagnostics and the number of files scanned.
///
/// # Errors
///
/// Fails on I/O errors or a malformed allowlist.
pub fn lint_engine_sources(repo_root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let allow_path = repo_root.join("crates/mrp-check/lint.allow");
    let allow = if allow_path.exists() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        Allowlist::parse(&text)?
    } else {
        Allowlist::default()
    };
    let mut files = Vec::new();
    for dir in ENGINE_SRC_DIRS {
        collect_rs_files(&repo_root.join(dir), &mut files)?;
    }
    files.sort();
    let mut diags = Vec::new();
    for path in &files {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let label = path
            .strip_prefix(repo_root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        diags.extend(lint_source(&label, &source, &allow));
    }
    Ok((diags, files.len()))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
