//! Checked-in regression schedules: interleavings that exposed real
//! bugs in earlier PRs, replayed against HEAD on every test run. Each
//! `.sched` file documents the pre-fix failure mode; these tests assert
//! the schedules now run violation-free with the expected deliveries.

use mrp_check::toy::{toy_reorder_scenario, toy_wedge_scenario};
use mrp_check::{replay_schedule, Scenario, Schedule};
use multiring_paxos::types::ProcessId;

const COALESCER_SCHED: &str = include_str!("../schedules/pr7_coalescer_last_frame.sched");
const ORPHAN_SCHED: &str = include_str!("../schedules/pr5_orphan_reentrancy.sched");
const WEDGE_SCHED: &str = include_str!("../schedules/toy_wedge_lasso.sched");
const REORDER_SCHED: &str = include_str!("../schedules/toy_reorder_refinement.sched");

/// PR 7: the per-destination frame coalescer dropped the last frame of
/// a flushed submission batch, so the second of two coalesced values
/// never left the submitter and validity failed everywhere else.
#[test]
fn pr7_coalescer_delivers_the_last_frame() {
    let schedule = Schedule::parse(COALESCER_SCHED).expect("schedule file must parse");
    let outcome = replay_schedule(&Scenario::coalescer(), &schedule)
        .expect("schedule must stay applicable on HEAD");
    assert!(
        outcome.violation.is_none(),
        "regression:\n{}",
        outcome.violation.unwrap()
    );
    assert!(outcome.quiescent, "replay must drain to quiescence");
    for p in 0..3u32 {
        let delivered = &outcome.delivered[&ProcessId::new(p)];
        assert_eq!(
            delivered.len(),
            2,
            "p{p} delivered {} of 2 batched values",
            delivered.len()
        );
    }
}

/// PR 5: `on_orphan_state` re-entrancy — with every remaining group
/// self-led by the sequencer, the orphan exchange re-enters inline and
/// used to observe a half-classified state map, wedging the round.
#[test]
fn pr5_orphaned_round_completes_after_initiator_crash() {
    let schedule = Schedule::parse(ORPHAN_SCHED).expect("schedule file must parse");
    let outcome = replay_schedule(&Scenario::orphan(), &schedule)
        .expect("schedule must stay applicable on HEAD");
    assert!(
        outcome.violation.is_none(),
        "regression:\n{}",
        outcome.violation.unwrap()
    );
    assert!(outcome.quiescent, "replay must drain to quiescence");
    // Both survivors deliver the orphaned value exactly once (the
    // releasing group differs per node; delivery is per-value).
    for p in 0..2u32 {
        let delivered = &outcome.delivered[&ProcessId::new(p)];
        assert_eq!(delivered.len(), 1, "p{p} must deliver the orphaned value");
    }
    // And delivery went through the orphan path, not the initiator:
    // p0's sequencers started at least one recovery round. (Completion
    // is not asserted — retiring the round needs a post-release
    // re-probe tick the deterministic drain stops short of.)
    let p0 = &outcome.recovery[&ProcessId::new(0)];
    assert!(
        p0.orphan_rounds_started >= 1,
        "value was not recovered through the orphan path"
    );
}

/// Checker self-test kept as a schedule: the minimized lasso for the
/// wedging toy hub must keep being classified as a liveness violation
/// (not merely as validity's quiescence heuristic) on replay.
#[test]
fn toy_wedge_lasso_is_detected_on_replay() {
    let schedule = Schedule::parse(WEDGE_SCHED).expect("schedule file must parse");
    let outcome = replay_schedule(&toy_wedge_scenario(), &schedule)
        .expect("schedule must stay applicable on HEAD");
    let v = outcome.violation.expect("the lasso must reproduce");
    assert_eq!(v.oracle, "liveness", "wrong oracle: {v}");
    assert!(v.detail.contains("non-progress cycle"), "{}", v.detail);
}

/// Checker self-test kept as a schedule: the minimized spec divergence
/// for the reordering toy victim must keep firing the refinement
/// oracle on replay.
#[test]
fn toy_reorder_refinement_is_detected_on_replay() {
    let schedule = Schedule::parse(REORDER_SCHED).expect("schedule file must parse");
    let outcome = replay_schedule(&toy_reorder_scenario(), &schedule)
        .expect("schedule must stay applicable on HEAD");
    let v = outcome.violation.expect("the divergence must reproduce");
    assert_eq!(v.oracle, "refinement", "wrong oracle: {v}");
    assert!(v.detail.contains("cycle"), "{}", v.detail);
}

#[test]
fn schedule_text_round_trips() {
    for text in [COALESCER_SCHED, ORPHAN_SCHED, WEDGE_SCHED, REORDER_SCHED] {
        let parsed = Schedule::parse(text).unwrap();
        let rendered = parsed.to_string();
        assert_eq!(Schedule::parse(&rendered).unwrap(), parsed);
    }
    // Every choice kind, including the fault and timer vocabulary.
    let all = "deliver 0>1\ndrop 2>0\ndup 1>2\nfire 0 delta:0\nfire 1 resend:1\n\
               fire 2 gap\nfire 0 flush\nfire 1 trim\nfire 2 ckpt-tick\n\
               fire 0 recovery\nfire 1 submit-flush\nckpt 1\ncrash 2\nrestart 2\ndrain\n";
    let parsed = Schedule::parse(all).unwrap();
    assert!(parsed.drain);
    assert_eq!(parsed.steps.len(), 14);
    assert_eq!(Schedule::parse(&parsed.to_string()).unwrap(), parsed);
}

#[test]
fn malformed_schedules_are_rejected() {
    for bad in [
        "deliver 0",            // missing destination
        "fire 0 frobnicate",    // unknown timer
        "teleport 1>2",         // unknown verb
        "deliver 0>1 trailing", // trailing junk
    ] {
        assert!(Schedule::parse(bad).is_err(), "`{bad}` must not parse");
    }
}
