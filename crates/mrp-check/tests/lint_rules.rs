//! Sans-io purity lint self-tests: the engine crates in this workspace
//! must be clean, and every rule must fire (with file:line precision)
//! on a deliberately violating source.

use std::path::Path;

use mrp_check::{lint_engine_sources, lint_source, Allowlist};

fn no_allow() -> Allowlist {
    Allowlist::parse("").unwrap()
}

#[test]
fn engine_crates_are_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (diags, files) = lint_engine_sources(&root).expect("lint walk must succeed");
    assert!(files >= 10, "suspiciously few engine sources: {files}");
    assert!(
        diags.is_empty(),
        "sans-io violations in engine crates:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_fires_on_injected_source() {
    let cases = [
        ("wall-clock", "let t = Instant::now();"),
        ("wall-clock", "let t = SystemTime::now();"),
        ("thread", "std::thread::sleep(d);"),
        ("thread", "let h = thread::spawn(move || {});"),
        (
            "hash-collections",
            "let m: HashMap<u32, u32> = HashMap::new();",
        ),
        ("hash-collections", "let s = HashSet::from([1]);"),
        ("stdout", "println!(\"state: {x}\");"),
        ("stdout", "dbg!(x);"),
        ("rand", "let mut rng = thread_rng();"),
    ];
    for (rule, line) in cases {
        let src = format!("fn f() {{\n    {line}\n}}\n");
        let diags = lint_source("engine.rs", &src, &no_allow());
        assert!(
            diags.iter().any(|d| d.rule == rule && d.line == 2),
            "`{line}` should trip `{rule}` at line 2, got {diags:?}"
        );
    }
}

#[test]
fn stderr_logging_does_not_trip_the_stdout_rule() {
    let src = "fn f() { eprintln!(\"diag\"); eprint!(\"d\"); }\n";
    assert!(lint_source("engine.rs", src, &no_allow()).is_empty());
}

#[test]
fn strings_and_comments_are_not_linted() {
    let src = r##"
// Instant::now() in a comment is fine.
/* and HashMap in /* nested */ block comments too */
fn f() -> &'static str {
    let doc = "call Instant::now() and thread::spawn";
    let raw = r#"HashMap::new() println!("x")"#;
    doc
}
"##;
    assert!(
        lint_source("engine.rs", src, &no_allow()).is_empty(),
        "quoted/commented patterns must not fire"
    );
}

#[test]
fn test_modules_are_exempt() {
    let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { println!(\"ok\"); }\n}\n";
    assert!(lint_source("engine.rs", src, &no_allow()).is_empty());
}

#[test]
fn inline_allow_suppresses_a_single_line() {
    let src = "fn f() {\n    let t = Instant::now(); // lint:allow(wall-clock)\n    let u = Instant::now();\n}\n";
    let diags = lint_source("engine.rs", src, &no_allow());
    assert_eq!(diags.len(), 1, "only the unannotated line fires: {diags:?}");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn allowlist_suppresses_by_rule_and_path_suffix() {
    let allow = Allowlist::parse("wall-clock src/shim.rs # reviewed\n").unwrap();
    assert!(allow.permits("wall-clock", "crates/x/src/shim.rs"));
    assert!(!allow.permits("wall-clock", "crates/x/src/other.rs"));
    assert!(!allow.permits("thread", "crates/x/src/shim.rs"));

    let src = "fn f() { let t = Instant::now(); }\n";
    assert!(lint_source("crates/x/src/shim.rs", src, &allow).is_empty());
    assert_eq!(lint_source("crates/x/src/other.rs", src, &allow).len(), 1);
}

#[test]
fn allowlist_rejects_unknown_rules() {
    assert!(Allowlist::parse("no-such-rule src/a.rs\n").is_err());
    assert!(Allowlist::parse("wall-clock\n").is_err(), "missing suffix");
}

#[test]
fn diagnostics_carry_file_and_line() {
    let src = "fn f() {\n\n    let m = HashMap::new();\n}\n";
    let diags = lint_source("crates/e/src/lib.rs", src, &no_allow());
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].file, "crates/e/src/lib.rs");
    assert_eq!(diags[0].line, 3);
    let rendered = diags[0].to_string();
    assert!(
        rendered.contains("crates/e/src/lib.rs:3"),
        "diagnostic must render file:line, got `{rendered}`"
    );
}
