//! Telemetry must be an observer, not a participant: taking a
//! [`TelemetrySnapshot`](mrp_amcast::telemetry::TelemetrySnapshot), a
//! health report or the recovery counters mid-exploration must leave
//! `state_digest()` unchanged on both engines. The checker's
//! fingerprint deduplication (and the replay stability of checked-in
//! schedules) depends on digests reflecting protocol state only —
//! counters, histograms and trace rings are excluded by design.

use std::collections::{BTreeMap, VecDeque};

use mrp_amcast::EngineKind;
use mrp_check::Scenario;
use multiring_paxos::event::{Action, Event, Message};
use multiring_paxos::types::{ProcessId, Time};

/// Routes one activation's actions through the mini runtime: sends land
/// on FIFO channels, persists complete inline (feeding any follow-up
/// actions back through), timers and local effects are ignored.
fn apply(
    pid: ProcessId,
    actions: Vec<Action>,
    engines: &mut BTreeMap<ProcessId, Box<dyn mrp_amcast::engine::AmcastEngine>>,
    channels: &mut BTreeMap<(ProcessId, ProcessId), VecDeque<Message>>,
    now: Time,
) {
    let mut queue: VecDeque<Action> = actions.into();
    while let Some(action) = queue.pop_front() {
        match action {
            Action::Send { to, msg } => {
                channels.entry((pid, to)).or_default().push_back(msg);
            }
            Action::Persist { token, .. } => {
                let more = engines
                    .get_mut(&pid)
                    .expect("known pid")
                    .on_event(now, Event::PersistDone(token));
                queue.extend(more);
            }
            _ => {}
        }
    }
}

/// Drives the three nodes of `scenario` through their start-up exchange
/// plus every submission to quiescence — a miniature deterministic
/// runtime: FIFO channels, persists completing inline, timers ignored.
/// Returns the engines for inspection.
fn run_to_quiescence(scenario: Scenario) -> Vec<Box<dyn mrp_amcast::engine::AmcastEngine>> {
    let now = Time::ZERO;
    let pids: Vec<ProcessId> = scenario.config.processes().into_iter().collect();
    let mut engines: BTreeMap<ProcessId, Box<dyn mrp_amcast::engine::AmcastEngine>> = pids
        .iter()
        .map(|&p| (p, (scenario.factory)(p, false)))
        .collect();
    let mut channels: BTreeMap<(ProcessId, ProcessId), VecDeque<Message>> = BTreeMap::new();

    for &p in &pids {
        let actions = engines
            .get_mut(&p)
            .expect("known pid")
            .on_event(now, Event::Start);
        apply(p, actions, &mut engines, &mut channels, now);
    }
    for sub in &scenario.submissions {
        let actions = engines
            .get_mut(&sub.at)
            .expect("known pid")
            .multicast(now, &sub.groups, sub.payload.clone())
            .expect("submission accepted")
            .1;
        apply(sub.at, actions, &mut engines, &mut channels, now);
    }
    for _ in 0..100_000 {
        let Some((&(from, to), _)) = channels.iter().find(|(_, q)| !q.is_empty()) else {
            return engines.into_values().collect();
        };
        let msg = channels
            .get_mut(&(from, to))
            .and_then(VecDeque::pop_front)
            .expect("non-empty");
        let actions = engines
            .get_mut(&to)
            .expect("known pid")
            .on_event(now, Event::Message { from, msg });
        apply(to, actions, &mut engines, &mut channels, now);
    }
    panic!("exchange did not quiesce");
}

#[test]
fn telemetry_snapshots_leave_the_state_digest_unchanged() {
    for kind in [EngineKind::MultiRing, EngineKind::Wbcast] {
        for scenario in [Scenario::mixed(kind), Scenario::batched(kind, true)] {
            let name = scenario.name.clone();
            for engine in run_to_quiescence(scenario) {
                let before = engine.state_digest();
                let snapshot = engine.telemetry();
                let _ = engine.health(Time::ZERO.plus(1_000_000));
                let _ = engine.recovery_counters();
                let after = engine.state_digest();
                assert_eq!(
                    before,
                    after,
                    "{name}/{}: telemetry observation perturbed the digest",
                    engine.engine_name()
                );
                // And the telemetry itself must not be hashed: the
                // snapshot has recorded real activity, yet repeated
                // digests stay bit-identical.
                assert!(
                    !snapshot.counters.is_empty() || !snapshot.gauges.is_empty(),
                    "{name}: expected some recorded activity"
                );
                assert_eq!(engine.state_digest(), after);
            }
        }
    }
}
