//! The real workspace must pass the wire-conformance suite: codec tags
//! alive and collision-free, every frame variant covered in every
//! codec/dispatch function, protocol-constant assertions present, and
//! every `Message` variant round-tripping through the live codec.

use std::path::Path;

use mrp_check::conformance_check;

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_conformance_clean() {
    let (findings, files) = conformance_check(repo_root()).expect("sources readable");
    assert!(files >= 3, "expected to inspect at least 3 files");
    assert!(
        findings.is_empty(),
        "wire-conformance findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
