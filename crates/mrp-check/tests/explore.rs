//! Bounded exploration of the real engines: both engines' mixed-traffic
//! scenario is explored with fault branching on and must stay
//! violation-free; dedup + partial-order reduction must beat a naive
//! DFS. These run the debug build, so depths are kept small — the CI
//! smoke (`cargo run --release -p mrp-check --bin check`) explores a
//! depth deeper and enforces the >10x reduction criterion.

use mrp_amcast::EngineKind;
use mrp_check::{check, CheckerConfig, FaultBudget, Scenario};

fn fault_cfg(depth: usize) -> CheckerConfig {
    CheckerConfig {
        depth,
        max_timer_fires: 1,
        faults: FaultBudget {
            drops: 1,
            dups: 1,
            crashes: 1,
            checkpoints: 1,
        },
        dedup: true,
        por: true,
        max_states: 2_000_000,
        ..CheckerConfig::default()
    }
}

#[test]
fn multiring_mixed_traffic_is_violation_free_under_faults() {
    let scenario = Scenario::mixed(EngineKind::MultiRing);
    let report = check(&scenario, fault_cfg(4));
    assert!(
        report.violation.is_none(),
        "unexpected violation:\n{}",
        report.violation.unwrap()
    );
    assert!(!report.capped, "exploration hit the state cap");
    assert!(report.explored > 5_000, "explored only {}", report.explored);
    // Quiescence within four steps is not expected — terminals are
    // depth cutoffs, each drained fault-free for the validity oracle.
    assert!(report.depth_cutoffs > 0);
}

#[test]
fn wbcast_mixed_traffic_is_violation_free_under_faults() {
    let scenario = Scenario::mixed(EngineKind::Wbcast);
    let report = check(&scenario, fault_cfg(4));
    assert!(
        report.violation.is_none(),
        "unexpected violation:\n{}",
        report.violation.unwrap()
    );
    assert!(!report.capped, "exploration hit the state cap");
    assert!(report.explored > 5_000, "explored only {}", report.explored);
    assert!(report.depth_cutoffs > 0);
}

#[test]
fn batched_scenarios_are_violation_free_under_faults() {
    // The submission batcher in both flush regimes: size-bound (two
    // values trip the flush inline) and window-bound (flushes only
    // happen when the checker chooses to fire the SubmitFlush timer,
    // interleaved against deliveries and faults like any other choice).
    for kind in [EngineKind::MultiRing, EngineKind::Wbcast] {
        for window_bound in [false, true] {
            let scenario = Scenario::batched(kind, window_bound);
            let report = check(&scenario, fault_cfg(3));
            assert!(
                report.violation.is_none(),
                "{}: unexpected violation:\n{}",
                scenario.name,
                report.violation.unwrap()
            );
            assert!(!report.capped, "{}: hit the state cap", scenario.name);
            assert!(
                report.explored > 100,
                "{}: explored only {}",
                scenario.name,
                report.explored
            );
        }
    }
}

#[test]
fn liveness_pass_is_clean_on_the_real_engines() {
    // Lasso detection must not produce false positives on the real
    // engines: every repeated progress-insensitive state the DFS sees
    // either owes nobody anything or is still being driven (some timer
    // or frame had no chance to act inside the segment).
    for build in [
        (|| Scenario::mixed(EngineKind::MultiRing)) as fn() -> Scenario,
        || Scenario::mixed(EngineKind::Wbcast),
        || Scenario::batched(EngineKind::Wbcast, true),
    ] {
        let scenario = build();
        let report = check(
            &scenario,
            CheckerConfig {
                liveness: true,
                ..fault_cfg(3)
            },
        );
        assert!(
            report.violation.is_none(),
            "{}: liveness false positive:\n{}",
            scenario.name,
            report.violation.unwrap()
        );
    }
}

#[test]
fn dedup_and_por_beat_naive_dfs() {
    for kind in [EngineKind::MultiRing, EngineKind::Wbcast] {
        let scenario = Scenario::mixed(kind);
        let reduced = check(&scenario, fault_cfg(3));
        let naive = check(
            &scenario,
            CheckerConfig {
                dedup: false,
                por: false,
                ..fault_cfg(3)
            },
        );
        assert!(reduced.violation.is_none() && naive.violation.is_none());
        assert!(!naive.capped, "naive DFS must complete at this depth");
        assert!(
            reduced.pruned_dedup > 0 && reduced.pruned_sleep > 0,
            "{}: both pruning mechanisms should fire (dedup {}, sleep {})",
            scenario.name,
            reduced.pruned_dedup,
            reduced.pruned_sleep
        );
        let ratio = naive.explored as f64 / reduced.explored.max(1) as f64;
        assert!(
            ratio >= 2.0,
            "{}: reduction only {ratio:.1}x ({} vs {})",
            scenario.name,
            naive.explored,
            reduced.explored
        );
    }
}

#[test]
fn genuineness_holds_on_disjoint_rings() {
    // No frame referencing the g0-only value may reach p2 or p3.
    let scenario = Scenario::genuine_pairs();
    let report = check(&scenario, fault_cfg(3));
    assert!(
        report.violation.is_none(),
        "unexpected violation:\n{}",
        report.violation.unwrap()
    );
    assert!(report.explored > 100);
}

#[test]
fn genuineness_oracle_fires_on_over_tight_allowlist() {
    // Positive control: the mixed wbcast deployment legitimately sends
    // value-bearing frames to every process, so restricting the allowed
    // set to p0 alone must trip the oracle (already while applying the
    // submissions — the violation carries an empty schedule prefix).
    let mut scenario = Scenario::mixed(EngineKind::Wbcast);
    scenario.value_frame_allowed = Some(
        [multiring_paxos::types::ProcessId::new(0)]
            .into_iter()
            .collect(),
    );
    let report = check(&scenario, fault_cfg(2));
    let v = report.violation.expect("oracle must fire");
    assert_eq!(v.oracle, "genuineness", "wrong oracle: {v}");
}
