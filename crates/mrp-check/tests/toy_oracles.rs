//! Checker self-tests against the toy hub-ordered engine: the buggy
//! variant must be caught within the depth bound with a minimized,
//! replayable counterexample; the correct variant must explore clean;
//! and replays must be digest-stable (the whole premise of
//! fingerprint deduplication).

use mrp_amcast::EngineKind;
use mrp_check::toy::{toy_reorder_scenario, toy_scenario, toy_wedge_scenario};
use mrp_check::{check, replay_schedule, CheckerConfig, Scenario, Schedule};

fn cfg(depth: usize) -> CheckerConfig {
    CheckerConfig {
        depth,
        ..CheckerConfig::default()
    }
}

#[test]
fn buggy_toy_engine_is_caught_within_depth_bound() {
    // The buggy hub never sends sequence number 2 to its last
    // subscriber, so that node under-delivers: the validity oracle must
    // fire on the fault-free drain of some explored interleaving.
    let report = check(&toy_scenario(3, true), cfg(4));
    let v = report.violation.expect("the planted bug must be found");
    assert_eq!(v.oracle, "validity", "wrong oracle: {v}");

    // The minimized counterexample replays from scratch to the same
    // oracle — this is exactly what a checked-in regression test of a
    // real bug would do.
    let outcome = replay_schedule(&toy_scenario(3, true), &v.schedule)
        .expect("minimized schedule must stay applicable");
    let replayed = outcome.violation.expect("replay must reproduce");
    assert_eq!(replayed.oracle, "validity");
}

#[test]
fn wedged_toy_engine_is_caught_by_lasso_detection() {
    // The wedged hub parks the second value behind a retry timer that
    // re-arms without retrying. Every safety oracle stays silent — only
    // the liveness pass can object, by finding a fair cycle (the timer
    // fires, the state repeats, someone is still owed a delivery).
    let live = CheckerConfig {
        liveness: true,
        ..cfg(8)
    };
    let report = check(&toy_wedge_scenario(), live);
    assert!(report.lasso_candidates > 0, "no lasso candidates seen");
    let v = report.violation.expect("the wedge must be found");
    assert_eq!(v.oracle, "liveness", "wrong oracle: {v}");

    // Without the liveness pass the close-out drain's validity
    // heuristic still notices the under-delivery — but only as "some
    // deliveries missing at quiescence", with no evidence the stall is
    // permanent. The lasso pass upgrades that to a proper non-progress
    // counterexample: a repeating state whose every timer fired.
    let blind = check(&toy_wedge_scenario(), cfg(8));
    let heuristic = blind.violation.expect("validity heuristic fires too");
    assert_eq!(heuristic.oracle, "validity");
    assert_eq!(blind.lasso_candidates, 0, "no lasso accounting when off");

    // The minimized lasso replays from scratch to the same verdict.
    let outcome = replay_schedule(&toy_wedge_scenario(), &v.schedule)
        .expect("minimized schedule must stay applicable");
    let replayed = outcome.violation.expect("replay must reproduce");
    assert_eq!(replayed.oracle, "liveness");
}

#[test]
fn reordering_toy_engine_is_caught_by_the_refinement_oracle() {
    // The victim plays sequence 2 before sequence 1; once any other
    // process exhibits the agreed 1-then-2 order, the two executions
    // close a cycle in the spec's global partial order and the trace
    // stops being a behavior of the abstract multicast.
    let report = check(&toy_reorder_scenario(), cfg(8));
    let v = report.violation.expect("the reordering must be found");
    assert_eq!(v.oracle, "refinement", "wrong oracle: {v}");
    assert!(
        v.detail.contains("cycle") || v.detail.contains("acyclic"),
        "unexpected detail: {}",
        v.detail
    );

    let outcome = replay_schedule(&toy_reorder_scenario(), &v.schedule)
        .expect("minimized schedule must stay applicable");
    let replayed = outcome.violation.expect("replay must reproduce");
    assert_eq!(replayed.oracle, "refinement");
}

#[test]
fn correct_toy_engine_explores_clean() {
    let report = check(&toy_scenario(3, false), cfg(4));
    assert!(
        report.violation.is_none(),
        "false positive:\n{}",
        report.violation.unwrap()
    );

    // A single-value run is small enough to fully quiesce inside the
    // depth bound (hub orders inline, three decisions to deliver).
    let small = check(&toy_scenario(1, false), cfg(6));
    assert!(small.violation.is_none());
    assert!(small.quiescent > 0, "one-value toy run must quiesce");
}

#[test]
fn exploration_is_deterministic() {
    let a = check(&toy_scenario(2, false), cfg(4));
    let b = check(&toy_scenario(2, false), cfg(4));
    assert_eq!(a.explored, b.explored);
    assert_eq!(a.pruned_dedup, b.pruned_dedup);
    assert_eq!(a.pruned_sleep, b.pruned_sleep);
}

#[test]
fn replays_are_digest_stable() {
    // Identical schedules over identical scenarios must land on the
    // same world fingerprint — for the toy and for both real engines.
    let schedule = Schedule::parse("drain").unwrap();
    for build in [
        (|| toy_scenario(2, false)) as fn() -> Scenario,
        || Scenario::mixed(EngineKind::MultiRing),
        || Scenario::mixed(EngineKind::Wbcast),
    ] {
        let a = replay_schedule(&build(), &schedule).unwrap();
        let b = replay_schedule(&build(), &schedule).unwrap();
        assert_eq!(a.final_digest, b.final_digest);
        assert_eq!(a.executed, b.executed, "drain must be deterministic");
        assert!(a.violation.is_none());
    }
}
