//! # mrp-amcast: the pluggable atomic-multicast engine layer
//!
//! The paper's thesis is that *atomic multicast* — not atomic broadcast
//! — is the right communication primitive for global, partitioned
//! systems, and that Multi-Ring Paxos is one (genuine, scalable)
//! implementation of it. This crate makes that separation explicit in
//! the codebase: the `multicast(group, m)` / `deliver(m)` contract that
//! [`multiring_paxos::node::Node`] implicitly implements becomes the
//! [`AmcastEngine`] trait, and everything above it (simulator hosting,
//! services, benchmarks) is written against the trait instead of the
//! concrete ring protocol.
//!
//! ## The engine contract
//!
//! An engine is a sans-io state machine ([`StateMachine`]: consume
//! [`Event`]s, emit [`Action`]s) that additionally exposes local
//! submission ([`AmcastEngine::multicast`]). Every engine must provide
//! the three atomic-multicast properties of Section 2 of the paper:
//!
//! * **agreement** — all correct subscribers of a group deliver the
//!   same messages;
//! * **validity** — messages multicast by correct processes are
//!   delivered;
//! * **acyclic order** — the global relation "some process delivers m
//!   before m′" has no cycles.
//!
//! Two engines ship today, selected by [`EngineKind`]:
//!
//! | engine | ordering mechanism | trade-off |
//! |---|---|---|
//! | [`EngineKind::MultiRing`] | one Ring Paxos instance per group, deterministic merge + rate leveling at learners | high throughput, fault-tolerant ordering, merge adds Δ-bounded latency |
//! | [`EngineKind::Wbcast`] | per-group sequencer timestamps, delivery at the global `(timestamp, group)` order (Skeen / white-box style) | one less message delay on the ordering path, throughput bound by the sequencer |
//!
//! ## Adding a third engine
//!
//! 1. Implement the engine as a sans-io state machine and give it a
//!    wire id; encode its private messages into
//!    [`Message::Engine`](multiring_paxos::event::Message::Engine)
//!    frames (see [`wbcast`] for the pattern). Engines share the
//!    [`Event`]/[`Action`] vocabulary, so every existing runtime
//!    (simulator, TCP transport) hosts them unchanged.
//! 2. Implement [`AmcastEngine`] for it.
//! 3. Add a variant to [`EngineKind`]/[`AnyEngine`] so configuration
//!    can select it, and run `tests/ordering_invariants.rs` (which is
//!    parameterized over every [`EngineKind`]) against it.
//!
//! [`Event`]: multiring_paxos::event::Event
//! [`Action`]: multiring_paxos::event::Action
//! [`StateMachine`]: multiring_paxos::event::StateMachine

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod replica;
pub mod wbcast;

pub use engine::{AmcastEngine, AnyEngine, EngineKind};
pub use replica::EngineReplica;
pub use wbcast::WbcastNode;
