//! # mrp-amcast: the pluggable atomic-multicast engine layer
//!
//! The paper's thesis is that *atomic multicast* — not atomic broadcast
//! — is the right communication primitive for global, partitioned
//! systems, and that Multi-Ring Paxos is one (scalable) implementation
//! of it. This crate makes that separation explicit in the codebase:
//! the `multicast(γ, m)` / `deliver(m)` contract becomes the
//! [`AmcastEngine`] trait, and everything above it (simulator hosting,
//! services, benchmarks) is written against the trait instead of the
//! concrete ring protocol.
//!
//! ## The engine contract
//!
//! An engine is a sans-io state machine ([`StateMachine`]: consume
//! [`Event`]s, emit [`Action`]s) that additionally exposes local
//! submission: [`AmcastEngine::multicast`] takes the paper's destination
//! **set** γ of groups — a single-element set is the common
//! partition-local case; a larger set is a cross-partition operation
//! (a multi-key transaction, a scan, a multi-log append). Every engine
//! must provide the atomic-multicast properties of Section 2 of the
//! paper for the values it delivers via `Action::Deliver`:
//!
//! * **agreement** — all correct subscribers of an addressed group
//!   deliver the same messages;
//! * **validity** — messages multicast by correct processes are
//!   delivered;
//! * **integrity** — every subscriber of γ delivers m exactly once,
//!   even when it subscribes to several groups of γ;
//! * **acyclic order** — the global relation "some process delivers m
//!   before m′" has no cycles, *across* groups included.
//!
//! Engines differ in **genuineness** ([`EngineKind::genuine`]): a
//! genuine engine involves only the addressed groups' processes in
//! ordering m. The white-box engine orders multi-group messages
//! genuinely (each addressed group's sequencer proposes a timestamp,
//! the initiator distributes the maximum, groups deliver at the final
//! `(timestamp, id)` position). The ring engine is genuine for
//! single-group messages only: a multi-group message is routed through
//! a *covering group* — a configured group, typically a deployment's
//! global ring, whose subscribers include every addressed group's
//! subscribers — and fails with `NoCoveringGroup` when none exists.
//!
//! Two engines ship today, selected by [`EngineKind`] (or the
//! `MRP_ENGINE` environment variable via [`EngineKind::from_env`]):
//!
//! | engine | ordering mechanism | multi-group messages | trade-off |
//! |---|---|---|---|
//! | [`EngineKind::MultiRing`] | one Ring Paxos instance per group, deterministic merge + rate leveling at learners | covering (global) group | high throughput, fault-tolerant ordering, merge adds Δ-bounded latency |
//! | [`EngineKind::Wbcast`] | per-group sequencer timestamps, delivery in global `(timestamp, id)` order (Skeen / white-box style) | genuine: max-timestamp agreement among addressed groups | one less message delay for single-group, two more for multi-group, throughput bound by the sequencer |
//!
//! Both engines survive coordinator crashes: the ring engine re-runs
//! Phase 1 under the re-elected coordinator, and the wbcast engine
//! treats [`Event::CoordinatorChange`](multiring_paxos::event::Event)
//! as sequencer handover (epoch-stamped streams, initiator retries
//! with receiver-side dedup, subscriber re-anchoring — see [`wbcast`]).
//! `tests/ordering_invariants.rs` exercises the crash path for every
//! [`EngineKind`].
//!
//! Backpressure: [`AmcastEngine::backlog`] reports locally submitted,
//! not-yet-settled values for both engines (ring: proposals not yet
//! decided; wbcast: submissions to subscribed groups not yet delivered
//! locally).
//!
//! ## Checkpointing and recovery
//!
//! The trait also carries the engine-generic **checkpoint/trim
//! surface** (the paper's Section 5, generalized beyond the ring
//! engine):
//!
//! * [`AmcastEngine::watermark`] reports the stable prefix of the
//!   engine's per-group delivery streams as a [`Watermark`]
//!   — consensus instances for the ring engine, sequencer timestamps
//!   for wbcast;
//! * a replica checkpoints by persisting that watermark together with
//!   the application snapshot and the engine's own
//!   [`checkpoint_state`](AmcastEngine::checkpoint_state);
//! * once durable, [`AmcastEngine::trim`] discards protocol state below
//!   the watermark — wbcast prunes its delivered-id dedup records and
//!   tells each group's sequencer to prune its decided-id map and
//!   released-value history (min over all subscribers' reports); the
//!   ring engine's acceptor logs are trimmed by the coordinated quorum
//!   protocol instead;
//! * after a crash, [`AmcastEngine::install_checkpoint`] restores the
//!   watermark into a freshly built engine and
//!   [`AmcastEngine::resume`] re-fetches the gap up to the live streams
//!   (ring: acceptor backfill; wbcast: a `Resync` replay of the
//!   retained history, with deliveries held until the replay
//!   terminates so the recovered sequence is byte-identical to the
//!   survivors').
//!
//! [`EngineReplica`] drives the whole cycle for any engine; the
//! recovery test `replica_crash_and_restart_recovers_from_checkpoint`
//! in `tests/ordering_invariants.rs` exercises it for every
//! [`EngineKind`].
//!
//! ## Adding a third engine
//!
//! 1. Implement the engine as a sans-io state machine and give it a
//!    wire id; encode its private messages into
//!    [`Message::Engine`](multiring_paxos::event::Message::Engine)
//!    frames (see [`wbcast`] for the pattern). Engines share the
//!    [`Event`]/[`Action`] vocabulary, so every existing runtime
//!    (simulator, TCP transport) hosts them unchanged.
//! 2. Implement [`AmcastEngine`] for it: `multicast`/`engine_name` are
//!    mandatory; implement `backlog` if the engine can track in-flight
//!    submissions, and the checkpoint surface (`watermark`,
//!    `checkpoint_state`, `install_checkpoint`, `trim`, `resume`) if it
//!    should support bounded state and crash recovery — the defaults
//!    are safe no-ops, so a minimal engine still runs everywhere.
//! 3. Add a variant to [`EngineKind`]/[`AnyEngine`] so configuration
//!    can select it, and run `tests/ordering_invariants.rs` (which is
//!    parameterized over every [`EngineKind`]) against it.
//!
//! ## Submission batching
//!
//! [`AnyEngine`] wraps every engine with a submission-edge
//! [`Batcher`](batcher::Batcher): when enabled (off by default;
//! [`BatchConfig::from_env`] reads `MRP_BATCH` and friends, or call
//! [`AnyEngine::set_batching`]), client `Request`s addressed to the
//! same group set are queued and flushed as one
//! [`AmcastEngine::multicast_batch`] round — one consensus instance on
//! the ring engine, one coalesced sequencer exchange on wbcast — and
//! same-destination engine frames emitted by one activation ride a
//! single `Message::Batch` wire frame. Per-value delivery semantics
//! (exactly-once, global acyclic order) are unchanged; the batch
//! telemetry (`batch.flushes`, `batch.submitted_values`,
//! `batch.occupancy`, `wire.frames_coalesced`) rides the snapshot
//! below. See the `Performance` section of the repository README for
//! knobs and measured numbers.
//!
//! ## Observability
//!
//! Every engine carries a sans-io [`telemetry`] substrate and exposes
//! three read-outs on the trait:
//!
//! * [`AmcastEngine::telemetry`] — a [`TelemetrySnapshot`] of
//!   phase-level counters, gauges and latency histograms plus a bounded
//!   ring of structured [`ProtocolEvent`](telemetry::ProtocolEvent)s
//!   (takeovers, orphan recoveries, truncations);
//! * [`AmcastEngine::health`] — a [`HealthReport`] from the stall
//!   probe: rounds pending longer than
//!   [`STALL_DELTAS`](telemetry::STALL_DELTAS)·Δ, frozen checkpoint
//!   prune floors, deliveries held behind a resync;
//! * [`AmcastEngine::recovery_counters`] — cheap [`RecoveryCounters`]
//!   that [`EngineReplica`] diffs after every event to log recovery
//!   actions as they happen.
//!
//! The simulator folds per-node snapshots into each run's metrics, the
//! TCP runtime logs them periodically, and `mrp-bench` emits them as
//! the `engine_telemetry` section of its `BENCH_*.json` artifacts.
//!
//! [`Event`]: multiring_paxos::event::Event
//! [`Action`]: multiring_paxos::event::Action
//! [`StateMachine`]: multiring_paxos::event::StateMachine

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batcher;
pub mod engine;
pub mod replica;
pub mod telemetry;
pub mod wbcast;

pub use batcher::BatchConfig;
pub use engine::{AmcastEngine, AnyEngine, EngineKind, Watermark};
pub use replica::EngineReplica;
pub use telemetry::{
    EngineTelemetry, HealthIssue, HealthReport, Histogram, MetricsRegistry, RecoveryCounters,
    TelemetrySnapshot,
};
pub use wbcast::WbcastNode;
