//! Engine telemetry: protocol-phase metrics, a bounded trace ring, and
//! the health/stall probe — the observability substrate for every
//! engine.
//!
//! The paper's evaluation reasons in protocol phases (submit → propose
//! → final → release), and so does anyone debugging a stalled Skeen
//! round or a frozen prune floor. This module gives engines a zero-cost
//! place to record that structure sans-io:
//!
//! * [`MetricsRegistry`] — named counters, gauges and log-linear
//!   [`Histogram`]s. Keys are `&'static str`, so recording on the hot
//!   path allocates nothing beyond the first insertion.
//! * [`TraceRing`] — a bounded ring of structured [`ProtocolEvent`]s
//!   (sequencer takeovers, orphan recoveries, resync truncations, …).
//!   Old events are dropped, never reallocated: the ring is a flight
//!   recorder, not a log.
//! * [`TelemetrySnapshot`] — the read-out surface
//!   ([`AmcastEngine::telemetry`](crate::AmcastEngine::telemetry)):
//!   a point-in-time copy of the registry plus snapshot-time gauges the
//!   engine computes from live state (backlogs, watermark lag).
//! * [`HealthReport`] — the stall probe
//!   ([`AmcastEngine::health`](crate::AmcastEngine::health)): flags
//!   rounds pending longer than [`STALL_DELTAS`]·Δ, frozen checkpoint
//!   prune floors, and held deliveries.
//! * [`RecoveryCounters`] — the cheap change-detection surface
//!   [`EngineReplica`](crate::EngineReplica) polls after every event to
//!   make silent re-anchors loud.
//!
//! The [`Histogram`] lives here (extracted from `mrp-sim`, which
//! re-exports it) so engines can record latencies without depending on
//! the simulator.

use multiring_paxos::types::{GroupId, Time};
use std::collections::{BTreeMap, VecDeque};

/// Precision bits of the log-linear histogram (relative error ≤ 1/2^P).
const P: u32 = 7;

/// Default capacity of an engine's [`TraceRing`].
pub const TRACE_RING_CAPACITY: usize = 256;

/// Stall threshold factor for the health probe: a round (or held
/// delivery) outstanding longer than this many Δ heartbeat periods is
/// flagged. Retries fire every 4 Δ and orphan recovery every 12 Δ, so a
/// round that survived 64 Δ has outlived every repair mechanism.
pub const STALL_DELTAS: u64 = 64;

/// A log-linear histogram of `u64` samples (microseconds, bytes, …):
/// constant relative precision like HDR histograms, O(1) record.
///
/// An empty histogram is well-defined: [`Histogram::min`] and
/// [`Histogram::max`] both return 0 (there is no smallest or largest
/// sample, and 0 is the conventional "nothing recorded" reading), and
/// `Default` is identical to [`Histogram::new`] — the internal
/// `min`-tracking seed is an implementation detail that must never leak
/// through either constructor.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0,
            // Seeded so the first `record` wins the `min` comparison;
            // never observable (an empty histogram reports `min() == 0`).
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(v: u64) -> u32 {
        if v < (1 << P) {
            v as u32
        } else {
            let k = 63 - v.leading_zeros(); // k >= P
            ((k - P + 1) << P) + (((v >> (k - P)) as u32) & ((1 << P) - 1))
        }
    }

    fn representative(idx: u32) -> u64 {
        if idx < (1 << P) {
            u64::from(idx)
        } else {
            let group = (idx >> P) - 1;
            let sub = u64::from(idx & ((1 << P) - 1));
            let base = 1u64 << (group + P);
            base + sub * (base >> P) + (base >> (P + 1))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(Self::index(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (approximate to the bucket
    /// resolution).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                return Self::representative(idx);
            }
        }
        self.max
    }

    /// The (value, cumulative fraction) points of the CDF, one per
    /// occupied bucket — directly plottable.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            out.push((Self::representative(idx), seen as f64 / self.count as f64));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A structured protocol-phase event recorded by an engine into its
/// [`TraceRing`]: what happened, when, on which group, with one numeric
/// detail (a timestamp, an epoch, a count — whatever the `kind`
/// documents).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProtocolEvent {
    /// When the event was recorded (the engine's event-loop `now`).
    pub at: Time,
    /// Event kind, a static tag like `"seq.takeover"` or
    /// `"resync.truncated"`. Tags are engine-defined and listed in each
    /// engine's module docs.
    pub kind: &'static str,
    /// The group concerned, when the event is group-scoped.
    pub group: Option<GroupId>,
    /// One kind-specific numeric detail (epoch, timestamp, count, …).
    pub detail: u64,
}

/// A bounded ring of [`ProtocolEvent`]s: O(1) record, oldest events
/// dropped on overflow (with a count, so a snapshot shows the window is
/// partial).
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: VecDeque<ProtocolEvent>,
    cap: usize,
    dropped: u64,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(TRACE_RING_CAPACITY)
    }
}

impl TraceRing {
    /// A ring retaining the most recent `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest one when full.
    pub fn record(&mut self, event: ProtocolEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ProtocolEvent> {
        self.buf.iter()
    }

    /// Events evicted because the ring was full (the trace is a window,
    /// not a history — nonzero means older events are gone).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Named counters, gauges and histograms an engine records into on its
/// protocol hot paths. Keys are static strings so steady-state
/// recording allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name`.
    pub fn incr(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Reads counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge(&mut self, name: &'static str, v: u64) {
        self.gauges.insert(name, v);
    }

    /// Records sample `v` into histogram `name`.
    pub fn record(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Reads histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// The gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// The histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }
}

/// The telemetry an engine carries inline: a [`MetricsRegistry`] plus a
/// [`TraceRing`], both recorded into sans-io as protocol events are
/// processed.
#[derive(Clone, Debug, Default)]
pub struct EngineTelemetry {
    /// Counters/gauges/histograms recorded on the protocol hot paths.
    pub registry: MetricsRegistry,
    /// The flight recorder of notable protocol events.
    pub trace: TraceRing,
}

impl EngineTelemetry {
    /// Fresh, empty telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name`.
    pub fn incr(&mut self, name: &'static str, n: u64) {
        self.registry.incr(name, n);
    }

    /// Records sample `v` into histogram `name`.
    pub fn record(&mut self, name: &'static str, v: u64) {
        self.registry.record(name, v);
    }

    /// Records a trace event.
    pub fn trace(&mut self, at: Time, kind: &'static str, group: Option<GroupId>, detail: u64) {
        self.trace.record(ProtocolEvent {
            at,
            kind,
            group,
            detail,
        });
    }
}

/// A point-in-time copy of an engine's telemetry: the registry's
/// counters and histograms, gauges the engine computes from live state
/// at snapshot time (backlogs, lags, epochs), and the retained trace
/// window. Keys are owned strings so engines can add per-group
/// snapshot-time gauges (`"backlog.g0"`).
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// The reporting engine's [`engine_name`](crate::AmcastEngine::engine_name).
    pub engine: &'static str,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges (computed at snapshot time).
    pub gauges: BTreeMap<String, u64>,
    /// Latency/size distributions.
    pub histograms: BTreeMap<String, Histogram>,
    /// The trace ring's retained events, oldest first.
    pub events: Vec<ProtocolEvent>,
}

impl TelemetrySnapshot {
    /// An empty snapshot for `engine` (the trait default for engines
    /// that record nothing).
    pub fn empty(engine: &'static str) -> Self {
        Self {
            engine,
            ..Self::default()
        }
    }

    /// Starts a snapshot from a live registry and trace ring.
    pub fn from_telemetry(engine: &'static str, tel: &EngineTelemetry) -> Self {
        Self {
            engine,
            counters: tel
                .registry
                .counters()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            gauges: tel
                .registry
                .gauges()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            histograms: tel
                .registry
                .histograms()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            events: tel.trace.events().copied().collect(),
        }
    }

    /// Reads counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads gauge `name` (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Reads histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

/// One condition the health probe flagged.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HealthIssue {
    /// Stable issue code: `"stalled_round"`, `"frozen_prune_floor"`,
    /// `"held_deliveries"`, … (engine-documented).
    pub code: &'static str,
    /// The group concerned, when group-scoped.
    pub group: Option<GroupId>,
    /// Issue-specific magnitude: how long the round has been pending
    /// (µs), how many history entries the frozen floor retains, ….
    pub detail: u64,
}

/// The health probe's verdict: empty issues = healthy. Produced by
/// [`AmcastEngine::health`](crate::AmcastEngine::health) from live
/// engine state against the probe's `now` — no history is kept, so the
/// probe is safe to call at any frequency.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HealthReport {
    /// The instant the probe ran against.
    pub at: Time,
    /// Everything wrong, empty when healthy.
    pub issues: Vec<HealthIssue>,
}

impl HealthReport {
    /// A clean bill of health at `at`.
    pub fn healthy(at: Time) -> Self {
        Self {
            at,
            issues: Vec::new(),
        }
    }

    /// Whether no issue was flagged.
    pub fn is_healthy(&self) -> bool {
        self.issues.is_empty()
    }

    /// The issues carrying `code`.
    pub fn issues_with(&self, code: &str) -> impl Iterator<Item = &HealthIssue> + '_ {
        let code = code.to_string();
        self.issues.iter().filter(move |i| i.code == code)
    }
}

/// The recovery-outcome counters every engine exposes cheaply
/// ([`AmcastEngine::recovery_counters`](crate::AmcastEngine::recovery_counters)):
/// [`EngineReplica`](crate::EngineReplica) diffs them after every event
/// and reports increases, so a silent re-anchor or orphan recovery is
/// loud in sim and TCP runs alike.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecoveryCounters {
    /// Resync replays that terminated with a truncation: the stream
    /// re-anchored past a potential delivery gap.
    pub resync_truncations: u64,
    /// Orphan-recovery rounds started on behalf of presumed-crashed
    /// initiators (first attempt only; re-probes don't count).
    pub orphan_rounds_started: u64,
    /// Orphan-recovery rounds that confirmed release in every addressed
    /// group and retired.
    pub orphan_rounds_completed: u64,
    /// Sequencer takeovers performed by this process (groups adopted on
    /// a coordinator change).
    pub sequencer_takeovers: u64,
    /// Acceptor-backfill rounds requested (ring engine: checkpoint
    /// resume re-fetching the gap up to the live streams).
    pub backfill_rounds: u64,
    /// Checkpoints installed into a recovering engine.
    pub checkpoint_installs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_histogram_matches_new() {
        // The satellite bug: the derived Default left `min = 0`, so a
        // defaulted histogram reported min 0 forever. Both constructors
        // must now behave identically.
        let mut by_new = Histogram::new();
        let mut by_default = Histogram::default();
        for h in [&mut by_new, &mut by_default] {
            h.record(500);
            h.record(300);
        }
        assert_eq!(by_new.min(), 300);
        assert_eq!(by_default.min(), 300, "Default must seed min like new()");
        assert_eq!(by_new.max(), by_default.max());
        assert_eq!(by_new.count(), by_default.count());
    }

    #[test]
    fn empty_histogram_min_max_well_defined() {
        for h in [Histogram::new(), Histogram::default()] {
            assert_eq!(h.count(), 0);
            assert_eq!(h.min(), 0, "empty histogram min is 0, not the seed");
            assert_eq!(h.max(), 0);
            assert_eq!(h.quantile(0.5), 0);
            assert_eq!(h.mean(), 0.0);
        }
    }

    #[test]
    fn merge_of_empty_histograms_stays_empty() {
        let mut a = Histogram::default();
        let b = Histogram::default();
        a.merge(&b);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 0);
        a.record(7);
        assert_eq!(a.min(), 7, "merge must not poison min-tracking");
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 127] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 127);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 127);
    }

    #[test]
    fn histogram_relative_precision() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        let q = h.quantile(0.5) as f64;
        assert!((q - 1_000_000.0).abs() / 1_000_000.0 < 0.01, "q={q}");
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!((p50 as f64 - 5000.0).abs() / 5000.0 < 0.02);
        assert!((p99 as f64 - 9900.0).abs() / 9900.0 < 0.02);
        let mean = h.mean();
        assert!((mean - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 20);
    }

    #[test]
    fn trace_ring_bounds_and_counts_drops() {
        let mut ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.record(ProtocolEvent {
                at: Time::from_micros(i),
                kind: "test",
                group: None,
                detail: i,
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let details: Vec<u64> = ring.events().map(|e| e.detail).collect();
        assert_eq!(details, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.incr("rounds", 2);
        reg.incr("rounds", 1);
        reg.gauge("backlog", 7);
        reg.gauge("backlog", 3);
        reg.record("lat", 40);
        assert_eq!(reg.counter("rounds"), 3);
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.gauges().collect::<Vec<_>>(), vec![("backlog", 3)]);
        assert_eq!(reg.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_copies_registry_and_trace() {
        let mut tel = EngineTelemetry::new();
        tel.incr("a", 1);
        tel.record("h", 9);
        tel.trace(Time::from_micros(5), "ev", Some(GroupId::new(1)), 42);
        let snap = TelemetrySnapshot::from_telemetry("test", &tel);
        assert_eq!(snap.engine, "test");
        assert_eq!(snap.counter("a"), 1);
        assert_eq!(snap.histogram("h").unwrap().max(), 9);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, "ev");
        assert_eq!(snap.events[0].group, Some(GroupId::new(1)));
    }

    #[test]
    fn health_report_filters_by_code() {
        let mut r = HealthReport::healthy(Time::ZERO);
        assert!(r.is_healthy());
        r.issues.push(HealthIssue {
            code: "stalled_round",
            group: Some(GroupId::new(0)),
            detail: 100,
        });
        r.issues.push(HealthIssue {
            code: "frozen_prune_floor",
            group: None,
            detail: 5000,
        });
        assert!(!r.is_healthy());
        assert_eq!(r.issues_with("stalled_round").count(), 1);
        assert_eq!(r.issues_with("nothing").count(), 0);
    }
}
