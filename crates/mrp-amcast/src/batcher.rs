//! Submission-edge batching for the engine wrapper ([`AnyEngine`]).
//!
//! Every client operation used to cost one full engine round: one
//! `multicast(γ, m)`, one consensus instance (ring engine) or one
//! Skeen `Submit/ProposeAck/Final` exchange (white-box engine), and one
//! freshly framed message per hop. The [`Batcher`] coalesces
//! submissions to the *same group set* that arrive within a
//! configurable window / size budget and hands them to the engine as
//! one batched submission ([`AmcastEngine::multicast_batch`]), so a
//! single round carries many values. Delivery is unchanged: each value
//! is still delivered individually, exactly once, in a position
//! consistent with the engine's global acyclic order.
//!
//! Batching is **off by default** — an unconfigured deployment behaves
//! exactly as before — and is enabled per process via
//! [`BatchConfig::from_env`] (the `MRP_BATCH*` knobs) or
//! programmatically via `AnyEngine::set_batching`.
//!
//! [`AnyEngine`]: crate::AnyEngine
//! [`AmcastEngine::multicast_batch`]: crate::AmcastEngine::multicast_batch

use bytes::Bytes;
use multiring_paxos::types::GroupId;
use std::collections::BTreeMap;

/// Knobs for submission-edge batching.
///
/// A batch flushes as soon as its queue holds [`max_values`] values or
/// [`max_bytes`] payload bytes, whichever trips first; a queue that
/// stays below both budgets flushes when the [`window_us`] timer fires.
/// Queues are per group set γ (sorted, deduplicated), so values in one
/// batch always share a destination and can ride one engine round.
///
/// [`max_values`]: BatchConfig::max_values
/// [`max_bytes`]: BatchConfig::max_bytes
/// [`window_us`]: BatchConfig::window_us
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BatchConfig {
    /// Flush a γ-queue once it holds this many values (size-bound
    /// batching). `1` makes every submission its own batch.
    pub max_values: usize,
    /// Flush a γ-queue once its queued payloads reach this many bytes,
    /// even if `max_values` has not been reached — bounds the memory a
    /// queue can pin and the size of the frame a flush produces.
    pub max_bytes: usize,
    /// Flush all queues this many microseconds after the first value
    /// was enqueued (window-bound batching). `0` disarms the timer, so
    /// only the size budgets flush.
    pub window_us: u64,
}

impl BatchConfig {
    /// The default *enabled* configuration: up to 64 values or 64 KiB
    /// per batch, flushed after at most 200 µs.
    pub fn enabled() -> Self {
        Self {
            max_values: 64,
            max_bytes: 64 * 1024,
            window_us: 200,
        }
    }

    /// Reads the batching knobs from the environment:
    ///
    /// | variable              | meaning                                 |
    /// |-----------------------|-----------------------------------------|
    /// | `MRP_BATCH`           | `1`/`on`/`true` enables batching        |
    /// | `MRP_BATCH_VALUES`    | [`max_values`](Self::max_values)        |
    /// | `MRP_BATCH_BYTES`     | [`max_bytes`](Self::max_bytes)          |
    /// | `MRP_BATCH_WINDOW_US` | [`window_us`](Self::window_us)          |
    ///
    /// Returns `None` (batching off — today's unbatched behavior) when
    /// `MRP_BATCH` is unset or set to `0`/`off`/`false`; otherwise the
    /// [`BatchConfig::enabled`] defaults with any per-knob overrides
    /// applied. Unparseable override values keep their defaults.
    pub fn from_env() -> Option<Self> {
        let on = match std::env::var("MRP_BATCH") {
            Ok(v) => !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "" | "0" | "off" | "false"
            ),
            Err(_) => false,
        };
        if !on {
            return None;
        }
        let mut cfg = Self::enabled();
        if let Some(v) = env_parse("MRP_BATCH_VALUES") {
            cfg.max_values = (v as usize).max(1);
        }
        if let Some(v) = env_parse("MRP_BATCH_BYTES") {
            cfg.max_bytes = (v as usize).max(1);
        }
        if let Some(v) = env_parse("MRP_BATCH_WINDOW_US") {
            cfg.window_us = v;
        }
        Some(cfg)
    }
}

fn env_parse(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// One queued submission batch for a single group set.
#[derive(Default, Debug)]
struct PendingQueue {
    payloads: Vec<Bytes>,
    bytes: usize,
}

/// The sans-io batching state the engine wrapper drives: per-γ queues
/// and the flush-timer arm flag. Flush statistics are kept by the
/// wrapper (which sees every flush as it submits it).
#[derive(Default, Debug)]
pub struct Batcher {
    cfg: Option<BatchConfig>,
    queues: BTreeMap<Vec<GroupId>, PendingQueue>,
    timer_armed: bool,
}

/// What `push` asks the wrapper to do next.
#[derive(Debug)]
pub enum PushOutcome {
    /// A size/byte budget tripped: submit this γ-queue now.
    Flush(Vec<GroupId>, Vec<Bytes>),
    /// Queued; arm the window timer (`window_us`) if none is armed.
    ArmTimer(u64),
    /// Queued under an already-armed timer; nothing to do.
    Queued,
}

impl Batcher {
    /// Whether batching is enabled.
    pub fn enabled(&self) -> bool {
        self.cfg.is_some()
    }

    /// Reconfigures batching; pending queues from a previous
    /// configuration are returned so the caller can submit them rather
    /// than drop them.
    pub fn set_config(&mut self, cfg: Option<BatchConfig>) -> Vec<(Vec<GroupId>, Vec<Bytes>)> {
        self.cfg = cfg;
        self.drain()
    }

    /// The active configuration.
    pub fn config(&self) -> Option<BatchConfig> {
        self.cfg
    }

    /// Enqueues one framed payload for group set `groups`.
    ///
    /// The key is the sorted, deduplicated group set, so differently
    /// ordered spellings of the same γ share a queue.
    pub fn push(&mut self, groups: &[GroupId], payload: Bytes) -> PushOutcome {
        let Some(cfg) = self.cfg else {
            // Disabled: the caller must not queue; treat as an
            // immediate single-value flush to stay safe regardless.
            return PushOutcome::Flush(groups.to_vec(), vec![payload]);
        };
        let mut key = groups.to_vec();
        key.sort_unstable();
        key.dedup();
        let queue = self.queues.entry(key.clone()).or_default();
        queue.bytes += payload.len();
        queue.payloads.push(payload);
        if queue.payloads.len() >= cfg.max_values || queue.bytes >= cfg.max_bytes {
            let q = self.queues.remove(&key).expect("queue just touched");
            return PushOutcome::Flush(key, q.payloads);
        }
        if cfg.window_us > 0 && !self.timer_armed {
            self.timer_armed = true;
            return PushOutcome::ArmTimer(cfg.window_us);
        }
        PushOutcome::Queued
    }

    /// Takes every pending queue (window expiry, reconfiguration, or
    /// shutdown) and disarms the timer.
    pub fn drain(&mut self) -> Vec<(Vec<GroupId>, Vec<Bytes>)> {
        self.timer_armed = false;
        let queues = std::mem::take(&mut self.queues);
        queues
            .into_iter()
            .map(|(key, q)| (key, q.payloads))
            .collect()
    }

    /// Values currently queued and not yet submitted.
    pub fn pending(&self) -> usize {
        self.queues.values().map(|q| q.payloads.len()).sum()
    }

    /// Folds the pending γ-queues and the timer arm flag into a state
    /// fingerprint (see [`multiring_paxos::digest`]); the static batch
    /// configuration is excluded.
    pub fn digest_into(&self, h: &mut multiring_paxos::digest::Fnv1a) {
        use multiring_paxos::digest::DigestInto;
        h.write_usize(self.queues.len());
        for (groups, q) in &self.queues {
            groups.digest_into(h);
            q.payloads.digest_into(h);
        }
        self.timer_armed.digest_into(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gs(ids: &[u16]) -> Vec<GroupId> {
        ids.iter().map(|&g| GroupId::new(g)).collect()
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![7u8; n])
    }

    #[test]
    fn size_budget_flushes_exactly_at_max_values() {
        let mut b = Batcher::default();
        b.set_config(Some(BatchConfig {
            max_values: 3,
            max_bytes: usize::MAX,
            window_us: 0,
        }));
        assert!(matches!(b.push(&gs(&[1]), payload(4)), PushOutcome::Queued));
        assert!(matches!(b.push(&gs(&[1]), payload(4)), PushOutcome::Queued));
        match b.push(&gs(&[1]), payload(4)) {
            PushOutcome::Flush(key, values) => {
                assert_eq!(key, gs(&[1]));
                assert_eq!(values.len(), 3);
            }
            _ => panic!("third push must flush"),
        }
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn byte_budget_flushes_before_value_budget() {
        let mut b = Batcher::default();
        b.set_config(Some(BatchConfig {
            max_values: 100,
            max_bytes: 10,
            window_us: 0,
        }));
        assert!(matches!(b.push(&gs(&[2]), payload(6)), PushOutcome::Queued));
        assert!(matches!(
            b.push(&gs(&[2]), payload(6)),
            PushOutcome::Flush(_, _)
        ));
    }

    #[test]
    fn window_timer_arms_once_and_drain_takes_all_queues() {
        let mut b = Batcher::default();
        b.set_config(Some(BatchConfig {
            max_values: 100,
            max_bytes: usize::MAX,
            window_us: 250,
        }));
        assert!(matches!(
            b.push(&gs(&[1]), payload(1)),
            PushOutcome::ArmTimer(250)
        ));
        assert!(matches!(b.push(&gs(&[2]), payload(1)), PushOutcome::Queued));
        assert_eq!(b.pending(), 2);
        let drained = b.drain();
        assert_eq!(drained.len(), 2, "one batch per group set");
        assert_eq!(b.pending(), 0);
        // Timer can re-arm after a drain.
        assert!(matches!(
            b.push(&gs(&[1]), payload(1)),
            PushOutcome::ArmTimer(250)
        ));
    }

    #[test]
    fn group_set_key_is_order_and_duplicate_insensitive() {
        let mut b = Batcher::default();
        b.set_config(Some(BatchConfig {
            max_values: 2,
            max_bytes: usize::MAX,
            window_us: 0,
        }));
        assert!(matches!(
            b.push(&gs(&[3, 1]), payload(1)),
            PushOutcome::Queued
        ));
        match b.push(&gs(&[1, 3, 1]), payload(1)) {
            PushOutcome::Flush(key, values) => {
                assert_eq!(key, gs(&[1, 3]));
                assert_eq!(values.len(), 2);
            }
            _ => panic!("same γ under different spellings must share a queue"),
        }
    }

    #[test]
    fn disabled_batcher_passes_values_straight_through() {
        let mut b = Batcher::default();
        match b.push(&gs(&[1]), payload(1)) {
            PushOutcome::Flush(key, values) => {
                assert_eq!(key, gs(&[1]));
                assert_eq!(values.len(), 1);
            }
            _ => panic!("disabled batcher must not queue"),
        }
    }
}
