//! A timestamp-based Skeen-style ("white-box") atomic multicast engine
//! with *genuine* multi-group messages.
//!
//! ## Message flow
//!
//! Each multicast group has one *sequencer*: the coordinator of the
//! ring the group maps to in the [`ClusterConfig`] (in a full
//! deployment the sequencer's counter would itself be Paxos-replicated
//! inside the group, as in *White-Box Atomic Multicast*; this engine
//! models the failure-free ordering path).
//!
//! ### Single-group messages (one phase)
//!
//! ```text
//!  proposer            sequencer of g                subscribers of g
//!     │  Submit(γ={g})     │                               │
//!     ├───────────────────▶│ ts := clock(g)++              │
//!     │                    ├── Ordered(g, ts, γ, v) ──────▶│  buffer by (ts, id)
//!     │                    ├── Heartbeat(g, promise) ──···▶│  deliver in global
//!     │                                                    │  (ts, id) order
//! ```
//!
//! ### Multi-group messages (Skeen phase 2, the paper's `multicast(γ, m)`)
//!
//! ```text
//!  initiator         sequencer of g₁   sequencer of g₂     subscribers of γ
//!     │  Submit(γ, v)      │                 │                   │
//!     ├───────────────────▶│ ts₁ := clock₁++ │                   │
//!     ├─────────────────────────────────────▶│ ts₂ := clock₂++   │
//!     │◀─ ProposeAck(ts₁) ─┤                 │                   │
//!     │◀─ ProposeAck(ts₂) ──────────────────-┤                   │
//!     │  fts := max(ts₁, ts₂)                │                   │
//!     ├─ Final(fts) ──────▶│                 │                   │
//!     ├─ Final(fts) ──────────────────────--▶│                   │
//!     │                    ├── Ordered(g₁, fts, γ, v) ──────────▶│ deliver once at
//!     │                    │                 ├─ Ordered(g₂,…) ──▶│ global (fts, id)
//! ```
//!
//! 1. **Submit** — the initiator assigns the value its [`ValueId`] and
//!    sends it to the sequencer of *each* addressed group. This is the
//!    step that makes the engine *genuine*: only the addressed groups'
//!    processes are ever involved with the message.
//! 2. **Propose** — each addressed sequencer assigns the value the next
//!    per-group timestamp. For a single-group message that timestamp is
//!    final immediately; for a multi-group message the sequencer holds
//!    the value as *undecided* and reports the proposal back to the
//!    initiator.
//! 3. **Decide** — the initiator collects one proposal per addressed
//!    group and sends the maximum back as the final timestamp. Each
//!    sequencer re-keys the value at the final timestamp, advances its
//!    clock past it (Lamport receive rule), and releases its ordered
//!    stream strictly in `(timestamp, id)` order — values keyed above a
//!    still-undecided proposal wait, because that proposal's final
//!    timestamp may land below them.
//! 4. **Deliver** — every subscriber buffers `Ordered` values and
//!    delivers in the global lexicographic `(timestamp, id)` order. A
//!    buffered value is deliverable once every other subscribed group's
//!    *frontier* (largest key observed from its sequencer, streams are
//!    released in key order over reliable FIFO channels) has reached the
//!    value's key. A subscriber of several addressed groups receives one
//!    copy per stream and delivers exactly once: only the copy in the
//!    smallest addressed group it subscribes to enters the buffer, the
//!    others merely advance frontiers.
//! 5. **Heartbeat** — sequencers of idle groups periodically promise
//!    "all my future timestamps exceed X" so that other groups'
//!    deliveries are never blocked by an idle group: the analogue of
//!    Multi-Ring Paxos rate leveling, paced by the ring's Δ. A promise
//!    never overtakes an undecided proposal.
//!
//! Timestamps are Lamport-style hybrid clocks: they advance with
//! submissions *and* with elapsed time (in a fixed quantum shared by
//! every group, [`CLOCK_QUANTUM_US`]), so timestamps of different groups
//! stay loosely aligned without any cross-group communication.
//!
//! Compared with the ring engine, a multi-group message costs two extra
//! message delays (propose/decide) but involves *only* the addressed
//! groups, where Multi-Ring Paxos must route it through a covering
//! (global) ring that every replica subscribes to — the scalability
//! bottleneck the paper's Figure 4 measures.
//!
//! All engine traffic travels in opaque
//! [`Message::Engine`](multiring_paxos::event::Message::Engine) frames
//! with wire id [`WBCAST_WIRE_ID`], so every existing runtime
//! (simulator, TCP transport) carries it unchanged.

use crate::engine::AmcastEngine;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use multiring_paxos::app::encode_command;
use multiring_paxos::config::ClusterConfig;
use multiring_paxos::event::{Action, Event, Message, StateMachine, TimerKind};
use multiring_paxos::node::MulticastError;
use multiring_paxos::types::{
    ClientId, GroupId, InstanceId, ProcessId, RingId, Time, Value, ValueId,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Wire id of this engine inside [`Message::Engine`] frames.
pub const WBCAST_WIRE_ID: u8 = 1;

const TAG_SUBMIT: u8 = 1;
const TAG_ORDERED: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_PROPOSE_ACK: u8 = 4;
const TAG_FINAL: u8 = 5;

/// A global delivery key: final timestamp, tie-broken by the value id
/// (final timestamps of multi-group messages can collide, even within
/// one group's stream).
type Key = (u64, ValueId);

/// The engine's private messages, carried inside [`Message::Engine`].
#[derive(Clone, PartialEq, Debug)]
enum WbMessage {
    /// The initiator submits a value to the sequencer of `group`, one of
    /// the addressed groups `groups` (γ).
    Submit {
        group: GroupId,
        groups: Vec<GroupId>,
        value: Value,
    },
    /// A sequencer's timestamp proposal for a multi-group value, sent
    /// back to the initiator.
    ProposeAck {
        group: GroupId,
        id: ValueId,
        ts: u64,
    },
    /// The initiator's decision: the final (maximum) timestamp for a
    /// multi-group value, sent to each addressed sequencer.
    Final {
        group: GroupId,
        id: ValueId,
        ts: u64,
    },
    /// A sequencer's ordering decision at the final timestamp, fanned
    /// out to the group's subscribers in strictly increasing key order.
    Ordered {
        group: GroupId,
        ts: u64,
        groups: Vec<GroupId>,
        value: Value,
    },
    /// The sequencer's promise that all future timestamps of `group`
    /// are strictly greater than `ts`.
    Heartbeat { group: GroupId, ts: u64 },
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    buf.put_u32_le(v.id.proposer.value());
    buf.put_u64_le(v.id.seq);
    buf.put_u16_le(v.group.value());
    buf.put_u32_le(v.payload.len() as u32);
    buf.put_slice(&v.payload);
}

fn get_value(buf: &mut Bytes) -> Option<Value> {
    if buf.remaining() < 4 + 8 + 2 + 4 {
        return None;
    }
    let proposer = ProcessId::new(buf.get_u32_le());
    let seq = buf.get_u64_le();
    let group = GroupId::new(buf.get_u16_le());
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let payload = buf.copy_to_bytes(len);
    Some(Value::new(ValueId::new(proposer, seq), group, payload))
}

fn put_groups(buf: &mut BytesMut, groups: &[GroupId]) {
    buf.put_u16_le(groups.len() as u16);
    for g in groups {
        buf.put_u16_le(g.value());
    }
}

fn get_groups(buf: &mut Bytes) -> Option<Vec<GroupId>> {
    if buf.remaining() < 2 {
        return None;
    }
    let n = buf.get_u16_le() as usize;
    if buf.remaining() < 2 * n {
        return None;
    }
    Some((0..n).map(|_| GroupId::new(buf.get_u16_le())).collect())
}

fn put_id(buf: &mut BytesMut, id: ValueId) {
    buf.put_u32_le(id.proposer.value());
    buf.put_u64_le(id.seq);
}

fn get_id(buf: &mut Bytes) -> Option<ValueId> {
    if buf.remaining() < 4 + 8 {
        return None;
    }
    let proposer = ProcessId::new(buf.get_u32_le());
    Some(ValueId::new(proposer, buf.get_u64_le()))
}

impl WbMessage {
    /// Wraps this message into the shared [`Message`] vocabulary.
    fn into_frame(self) -> Message {
        let mut buf = BytesMut::new();
        match &self {
            WbMessage::Submit {
                group,
                groups,
                value,
            } => {
                buf.put_u8(TAG_SUBMIT);
                buf.put_u16_le(group.value());
                put_groups(&mut buf, groups);
                put_value(&mut buf, value);
            }
            WbMessage::ProposeAck { group, id, ts } => {
                buf.put_u8(TAG_PROPOSE_ACK);
                buf.put_u16_le(group.value());
                put_id(&mut buf, *id);
                buf.put_u64_le(*ts);
            }
            WbMessage::Final { group, id, ts } => {
                buf.put_u8(TAG_FINAL);
                buf.put_u16_le(group.value());
                put_id(&mut buf, *id);
                buf.put_u64_le(*ts);
            }
            WbMessage::Ordered {
                group,
                ts,
                groups,
                value,
            } => {
                buf.put_u8(TAG_ORDERED);
                buf.put_u16_le(group.value());
                buf.put_u64_le(*ts);
                put_groups(&mut buf, groups);
                put_value(&mut buf, value);
            }
            WbMessage::Heartbeat { group, ts } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u16_le(group.value());
                buf.put_u64_le(*ts);
            }
        }
        Message::Engine {
            engine: WBCAST_WIRE_ID,
            payload: buf.freeze(),
        }
    }

    /// Parses an engine payload; `None` on malformed or foreign frames.
    fn parse(mut payload: Bytes) -> Option<WbMessage> {
        if payload.remaining() < 1 + 2 {
            return None;
        }
        let tag = payload.get_u8();
        let group = GroupId::new(payload.get_u16_le());
        match tag {
            TAG_SUBMIT => Some(WbMessage::Submit {
                group,
                groups: get_groups(&mut payload)?,
                value: get_value(&mut payload)?,
            }),
            TAG_PROPOSE_ACK => {
                let id = get_id(&mut payload)?;
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::ProposeAck {
                    group,
                    id,
                    ts: payload.get_u64_le(),
                })
            }
            TAG_FINAL => {
                let id = get_id(&mut payload)?;
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::Final {
                    group,
                    id,
                    ts: payload.get_u64_le(),
                })
            }
            TAG_ORDERED => {
                if payload.remaining() < 8 {
                    return None;
                }
                let ts = payload.get_u64_le();
                Some(WbMessage::Ordered {
                    group,
                    ts,
                    groups: get_groups(&mut payload)?,
                    value: get_value(&mut payload)?,
                })
            }
            TAG_HEARTBEAT => {
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::Heartbeat {
                    group,
                    ts: payload.get_u64_le(),
                })
            }
            _ => None,
        }
    }
}

/// Whether a wbcast [`Message::Engine`] payload carries or references a
/// multicast value: `Submit`/`Ordered` carry one, `ProposeAck`/`Final`
/// reference one by id; heartbeats are pure clock traffic. Genuineness
/// tests use this to assert that processes outside an addressed group
/// set γ see no protocol traffic for γ's messages.
pub fn frame_references_value(payload: Bytes) -> bool {
    matches!(
        WbMessage::parse(payload),
        Some(
            WbMessage::Submit { .. }
                | WbMessage::Ordered { .. }
                | WbMessage::ProposeAck { .. }
                | WbMessage::Final { .. }
        )
    )
}

/// A multi-group value whose final timestamp is still being agreed on
/// (held by the sequencer that proposed for it).
#[derive(Debug)]
struct Proposal {
    /// The timestamp this sequencer proposed (the final one is ≥ it).
    ts: u64,
    /// The value, emitted into the stream once decided.
    value: Value,
    /// The full addressed group set γ.
    groups: Vec<GroupId>,
}

/// Per-group sequencer state (held by the group's coordinator).
#[derive(Debug)]
struct Sequencer {
    /// The ring whose Δ paces this group's heartbeats.
    ring: RingId,
    /// Heartbeat interval, microseconds.
    delta_us: u64,
    /// Next timestamp to assign (timestamps start at 1).
    next_ts: u64,
    /// Highest promise already heartbeated (avoids redundant sends).
    promised: u64,
    /// The group's subscribers, precomputed: the fan-out target of
    /// every `Ordered`/`Heartbeat`, resolved once instead of scanning
    /// the subscription map per message.
    subscribers: Vec<ProcessId>,
    /// Undecided multi-group proposals, by value id.
    pending: BTreeMap<ValueId, Proposal>,
    /// Decided values not yet released to the stream: a value keyed
    /// above an undecided proposal waits, because that proposal's final
    /// timestamp (≥ its proposed one) may still land below.
    outq: BTreeMap<Key, (Value, Vec<GroupId>)>,
}

/// The shared time unit of the hybrid clocks, microseconds. Every
/// sequencer ticks in this fixed quantum — *not* in its ring's Δ —
/// so groups with different Δ still advance their timestamps at the
/// same wall-clock rate and no subscriber's delivery of one group can
/// lag another group's clock without bound. Δ only paces how often
/// the promise is *communicated* (heartbeats).
///
/// The quantum also bounds cross-group release: when a busy group's
/// count-driven timestamps outrun an idle group's time-driven promise,
/// the busy group's deliveries at shared subscribers drain at most
/// `1 / CLOCK_QUANTUM_US` values per second (the [`Sequencer::observe`]
/// rule lifts this cap entirely when the idle sequencer's process also
/// subscribes to the busy group). One microsecond puts that floor at
/// 10⁶ values/s/group — above any workload this simulator drives — at
/// no cost: timestamps are u64 and their magnitude carries no meaning.
pub const CLOCK_QUANTUM_US: u64 = 1;

impl Sequencer {
    /// Advances the hybrid clock with elapsed time: future timestamps
    /// of this group always exceed `now / CLOCK_QUANTUM_US`, keeping
    /// independent groups loosely aligned so no group waits long on
    /// another.
    fn bump_clock(&mut self, now: Time) {
        let floor = now.as_micros() / CLOCK_QUANTUM_US + 1;
        self.next_ts = self.next_ts.max(floor);
    }

    /// Lamport receive rule: a sequencer that observes another group's
    /// timestamp jumps its own clock past it, so a busy group's
    /// count-driven timestamps never outrun an idle co-located group's
    /// promises (which would cap the busy group's delivery rate at the
    /// time-based tick rate).
    fn observe(&mut self, ts: u64) {
        self.next_ts = self.next_ts.max(ts + 1);
    }

    /// The smallest key an undecided proposal could still finalize at
    /// (its final timestamp is ≥ its proposed one, so keys strictly
    /// below this bound are settled).
    fn undecided_bound(&self) -> Option<Key> {
        self.pending.iter().map(|(&id, p)| (p.ts, id)).min()
    }

    /// The highest timestamp this sequencer may promise: everything
    /// below `next_ts`, capped by undecided proposals (their final
    /// timestamps may equal the proposal) and by unreleased decided
    /// values.
    fn safe_promise(&self) -> u64 {
        let mut promise = self.next_ts - 1;
        if let Some((ts, _)) = self.undecided_bound() {
            promise = promise.min(ts - 1);
        }
        if let Some((&(ts, _), _)) = self.outq.first_key_value() {
            promise = promise.min(ts - 1);
        }
        promise
    }
}

/// Frontier position a heartbeat promise translates to: anything at the
/// promised timestamp (any id) has been ruled out for the future.
fn promise_key(ts: u64) -> Key {
    (ts, ValueId::new(ProcessId::new(u32::MAX), u64::MAX))
}

/// Per-subscribed-group delivery state.
#[derive(Debug)]
struct Subscription {
    /// Largest key observed from the group's sequencer. The sequencer
    /// releases its stream in strictly increasing key order over a
    /// reliable FIFO channel, so every future arrival is strictly
    /// greater.
    frontier: Key,
    /// Ordered-but-not-yet-deliverable values, keyed by `(ts, id)`.
    pending: BTreeMap<Key, Value>,
}

impl Default for Subscription {
    fn default() -> Self {
        Self {
            frontier: (0, ValueId::new(ProcessId::new(0), 0)),
            pending: BTreeMap::new(),
        }
    }
}

/// The state an initiator keeps per in-flight multi-group value while
/// collecting one timestamp proposal per addressed group.
#[derive(Debug)]
struct Collect {
    groups: Vec<GroupId>,
    acks: BTreeMap<GroupId, u64>,
}

/// The per-process state machine of the white-box engine: sequencer
/// roles for the groups this process coordinates, the initiator state
/// for in-flight multi-group submissions, plus the delivery buffer over
/// its subscribed groups.
pub struct WbcastNode {
    me: ProcessId,
    config: ClusterConfig,
    /// Groups this process sequences.
    led: BTreeMap<GroupId, Sequencer>,
    /// Groups this process subscribes to.
    subs: BTreeMap<GroupId, Subscription>,
    /// Multi-group submissions initiated here, awaiting proposals.
    collecting: BTreeMap<ValueId, Collect>,
    /// Locally submitted values addressed to a subscribed group, not
    /// yet delivered locally (the backpressure signal).
    inflight: BTreeSet<ValueId>,
    /// Per-proposer sequence numbers for [`ValueId`] assignment.
    next_seq: u64,
    /// Values delivered (progress metric).
    delivered: u64,
}

impl fmt::Debug for WbcastNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WbcastNode")
            .field("me", &self.me)
            .field("leads", &self.led.keys().collect::<Vec<_>>())
            .field("subscribes", &self.subs.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl WbcastNode {
    /// Creates the engine for process `me` over `config`. The
    /// sequencer of each group is the coordinator of the group's ring;
    /// subscriptions are the config's learner subscriptions.
    pub fn new(me: ProcessId, config: ClusterConfig) -> Self {
        let mut led = BTreeMap::new();
        for (&group, &ring_id) in config.groups() {
            let ring = config.ring(ring_id).expect("validated config");
            if ring.coordinator() == me {
                led.insert(
                    group,
                    Sequencer {
                        ring: ring_id,
                        delta_us: ring.tuning().delta_us,
                        next_ts: 1,
                        promised: 0,
                        subscribers: config.subscribers_of(group),
                        pending: BTreeMap::new(),
                        outq: BTreeMap::new(),
                    },
                );
            }
        }
        let subs = config
            .subscriptions_of(me)
            .into_iter()
            .map(|g| (g, Subscription::default()))
            .collect();
        Self {
            me,
            config,
            led,
            subs,
            collecting: BTreeMap::new(),
            inflight: BTreeSet::new(),
            next_seq: 0,
            delivered: 0,
        }
    }

    /// The process this engine embodies.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Values delivered so far (progress metric).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The timestamp frontier per subscribed group (inspection: equal
    /// frontiers on two subscribers of a group mean equal histories).
    pub fn horizons(&self) -> BTreeMap<GroupId, u64> {
        self.subs.iter().map(|(&g, s)| (g, s.frontier.0)).collect()
    }

    /// Ordered-but-undeliverable values buffered (backpressure metric).
    pub fn pending_len(&self) -> usize {
        self.subs.values().map(|s| s.pending.len()).sum()
    }

    fn sequencer_of(&self, group: GroupId) -> Option<ProcessId> {
        let ring = self.config.ring_of_group(group)?;
        Some(self.config.ring(ring)?.coordinator())
    }

    /// Routes an engine message to a peer, or handles it inline when
    /// addressed to this process itself.
    fn route(&mut self, now: Time, to: ProcessId, msg: WbMessage, out: &mut Vec<Action>) {
        if to == self.me {
            self.on_wb_message(now, msg, out);
        } else {
            out.push(Action::Send {
                to,
                msg: msg.into_frame(),
            });
        }
    }

    /// Sequencer side: a submission for `group`, one of the addressed
    /// groups γ. Single-group values take their timestamp as final and
    /// enter the stream directly; multi-group values become undecided
    /// proposals reported back to the initiator.
    fn on_submit(
        &mut self,
        now: Time,
        group: GroupId,
        groups: Vec<GroupId>,
        value: Value,
        out: &mut Vec<Action>,
    ) {
        let id = value.id;
        let (ack, release) = {
            let Some(seq) = self.led.get_mut(&group) else {
                // Stale submission (this process no longer sequences the
                // group); the proposer's client will retry elsewhere.
                return;
            };
            seq.bump_clock(now);
            let ts = seq.next_ts;
            seq.next_ts += 1;
            if groups.len() > 1 {
                seq.pending.insert(id, Proposal { ts, value, groups });
                (Some(ts), false)
            } else {
                seq.outq.insert((ts, id), (value, groups));
                (None, true)
            }
        };
        if let Some(ts) = ack {
            self.route(
                now,
                id.proposer,
                WbMessage::ProposeAck { group, id, ts },
                out,
            );
        }
        if release {
            self.flush_group(group, out);
        }
    }

    /// Initiator side: collects one timestamp proposal per addressed
    /// group; once complete, the maximum becomes the final timestamp and
    /// is sent to every addressed sequencer.
    fn on_propose_ack(
        &mut self,
        now: Time,
        group: GroupId,
        id: ValueId,
        ts: u64,
        out: &mut Vec<Action>,
    ) {
        self.observe_ts(group, ts);
        let Some(c) = self.collecting.get_mut(&id) else {
            return;
        };
        c.acks.insert(group, ts);
        if c.acks.len() < c.groups.len() {
            return;
        }
        let c = self.collecting.remove(&id).expect("checked above");
        let fts = c.acks.values().copied().max().expect("non-empty acks");
        for &g in &c.groups {
            let Some(sequencer) = self.sequencer_of(g) else {
                continue;
            };
            self.route(
                now,
                sequencer,
                WbMessage::Final {
                    group: g,
                    id,
                    ts: fts,
                },
                out,
            );
        }
    }

    /// Sequencer side: the final timestamp for an undecided proposal
    /// arrived; re-key the value at it and release what became settled.
    fn on_final(&mut self, group: GroupId, id: ValueId, fts: u64, out: &mut Vec<Action>) {
        self.observe_ts(group, fts);
        {
            let Some(seq) = self.led.get_mut(&group) else {
                return;
            };
            let Some(p) = seq.pending.remove(&id) else {
                return;
            };
            // The final timestamp orders this group's future assignments
            // after the value (Lamport receive rule on the group clock).
            seq.next_ts = seq.next_ts.max(fts + 1);
            seq.outq.insert((fts, id), (p.value, p.groups));
        }
        self.flush_group(group, out);
    }

    /// Releases the settled prefix of a led group's stream: decided
    /// values strictly below every undecided proposal, fanned out to the
    /// subscribers in increasing `(ts, id)` order. The frame is encoded
    /// once and shared across subscribers (`Message` clones are cheap:
    /// the payload is a reference-counted `Bytes`).
    fn flush_group(&mut self, group: GroupId, out: &mut Vec<Action>) {
        let me = self.me;
        loop {
            let released = {
                let Some(seq) = self.led.get_mut(&group) else {
                    return;
                };
                let Some((&key, _)) = seq.outq.first_key_value() else {
                    return;
                };
                if seq.undecided_bound().is_some_and(|bound| key > bound) {
                    return;
                }
                let (value, groups) = seq.outq.remove(&key).expect("head key present");
                // Future assignments must key above everything released.
                seq.next_ts = seq.next_ts.max(key.0 + 1);
                let frame = WbMessage::Ordered {
                    group,
                    ts: key.0,
                    groups: groups.clone(),
                    value: value.clone(),
                }
                .into_frame();
                let mut local = false;
                for &to in &seq.subscribers {
                    if to == me {
                        local = true;
                    } else {
                        out.push(Action::Send {
                            to,
                            msg: frame.clone(),
                        });
                    }
                }
                local.then_some((key.0, groups, value))
            };
            if let Some((ts, groups, value)) = released {
                self.on_ordered(group, ts, groups, value, out);
            }
        }
    }

    /// Lamport receive rule over every sequencer this process hosts:
    /// any timestamp observed from another group drags the local
    /// clocks past it (see [`Sequencer::observe`]).
    fn observe_ts(&mut self, from_group: GroupId, ts: u64) {
        for (&g, seq) in self.led.iter_mut() {
            if g != from_group {
                seq.observe(ts);
            }
        }
    }

    /// Subscriber side: buffers and drains in global `(ts, id)` order.
    /// A multi-group value arrives once per subscribed addressed group;
    /// only the copy in the smallest such group enters the delivery
    /// buffer — the others advance their stream's frontier, which is
    /// exactly what the delivery condition waits for.
    fn on_ordered(
        &mut self,
        group: GroupId,
        ts: u64,
        groups: Vec<GroupId>,
        value: Value,
        out: &mut Vec<Action>,
    ) {
        self.observe_ts(group, ts);
        let delivery_group = groups
            .iter()
            .copied()
            .filter(|g| self.subs.contains_key(g))
            .min();
        let Some(sub) = self.subs.get_mut(&group) else {
            return;
        };
        let key = (ts, value.id);
        sub.frontier = sub.frontier.max(key);
        if delivery_group == Some(group) {
            sub.pending.insert(key, value);
        }
        self.drain(out);
    }

    fn on_heartbeat(&mut self, group: GroupId, ts: u64, out: &mut Vec<Action>) {
        self.observe_ts(group, ts);
        let Some(sub) = self.subs.get_mut(&group) else {
            return;
        };
        let key = promise_key(ts);
        if key <= sub.frontier {
            return;
        }
        sub.frontier = key;
        self.drain(out);
    }

    /// Delivers every buffered value whose `(ts, id)` key can no longer
    /// be preceded: every other subscribed group's frontier must have
    /// reached the key (streams arrive in strictly increasing key order,
    /// so nothing smaller can still arrive from a group at or past it).
    fn drain(&mut self, out: &mut Vec<Action>) {
        loop {
            let mut best: Option<(Key, GroupId)> = None;
            for (&g, s) in &self.subs {
                if let Some((&key, _)) = s.pending.first_key_value() {
                    if best.is_none_or(|b| (key, g) < b) {
                        best = Some((key, g));
                    }
                }
            }
            let Some((key, g)) = best else { break };
            let releasable = self
                .subs
                .iter()
                .all(|(&g2, s2)| g2 == g || s2.frontier >= key);
            if !releasable {
                break;
            }
            let value = self
                .subs
                .get_mut(&g)
                .expect("candidate group is subscribed")
                .pending
                .remove(&key)
                .expect("candidate key is pending");
            self.delivered += 1;
            self.inflight.remove(&value.id);
            out.push(Action::Deliver {
                group: g,
                instance: InstanceId::new(key.0),
                value,
            });
        }
    }

    fn on_wb_message(&mut self, now: Time, msg: WbMessage, out: &mut Vec<Action>) {
        match msg {
            WbMessage::Submit {
                group,
                groups,
                value,
            } => self.on_submit(now, group, groups, value, out),
            WbMessage::ProposeAck { group, id, ts } => {
                self.on_propose_ack(now, group, id, ts, out);
            }
            WbMessage::Final { group, id, ts } => self.on_final(group, id, ts, out),
            WbMessage::Ordered {
                group,
                ts,
                groups,
                value,
            } => self.on_ordered(group, ts, groups, value, out),
            WbMessage::Heartbeat { group, ts } => self.on_heartbeat(group, ts, out),
        }
    }

    /// Handles a client request arriving at this proposer, mirroring
    /// the ring engine: the command is framed with its client session
    /// so any subscriber can answer.
    fn on_request(
        &mut self,
        now: Time,
        client: ClientId,
        request: u64,
        groups: &[GroupId],
        payload: Bytes,
        out: &mut Vec<Action>,
    ) {
        let framed = encode_command(client, request, &payload);
        if let Ok((_, actions)) = AmcastEngine::multicast(self, now, groups, framed) {
            out.extend(actions);
        }
        // Not a proposer / unknown group: drop; the client retries
        // against a correct proposer (same policy as the ring engine).
    }

    fn dispatch_message(&mut self, now: Time, msg: Message, out: &mut Vec<Action>) {
        match msg {
            Message::Engine { engine, payload } if engine == WBCAST_WIRE_ID => {
                if let Some(wb) = WbMessage::parse(payload) {
                    self.on_wb_message(now, wb, out);
                }
            }
            Message::Batch(msgs) => {
                for m in msgs {
                    self.dispatch_message(now, m, out);
                }
            }
            Message::Request {
                client,
                request,
                groups,
                payload,
            } => self.on_request(now, client, request, &groups, payload, out),
            // Ring traffic, trim/checkpoint protocol and foreign engine
            // frames do not concern this engine.
            _ => {}
        }
    }

    fn heartbeat(&mut self, now: Time, ring: RingId, out: &mut Vec<Action>) {
        let groups: Vec<GroupId> = self
            .led
            .iter()
            .filter(|(_, s)| s.ring == ring)
            .map(|(&g, _)| g)
            .collect();
        let mut delta_us = None;
        let me = self.me;
        for group in groups {
            let (promise, heartbeat_locally) = {
                let seq = self.led.get_mut(&group).expect("led group");
                seq.bump_clock(now);
                let promise = seq.safe_promise();
                let fresh = promise > seq.promised;
                if fresh {
                    seq.promised = promise;
                }
                delta_us = Some(seq.delta_us);
                if !fresh {
                    continue;
                }
                let frame = WbMessage::Heartbeat { group, ts: promise }.into_frame();
                let mut heartbeat_locally = false;
                for &to in &seq.subscribers {
                    if to == me {
                        heartbeat_locally = true;
                    } else {
                        out.push(Action::Send {
                            to,
                            msg: frame.clone(),
                        });
                    }
                }
                (promise, heartbeat_locally)
            };
            if heartbeat_locally {
                self.on_heartbeat(group, promise, out);
            }
        }
        // Exactly one re-arm per ring, regardless of how many led
        // groups share it: runtimes do not dedupe timers, so one
        // SetTimer per group would multiply live timers every Δ.
        if let Some(delta_us) = delta_us {
            out.push(Action::SetTimer {
                after_us: delta_us.max(1),
                timer: TimerKind::Delta(ring),
            });
        }
    }

    fn on_start(&mut self, out: &mut Vec<Action>) {
        // One Δ timer per distinct ring this process sequences groups
        // of (several groups may share a ring).
        let mut rings: BTreeMap<RingId, u64> = BTreeMap::new();
        for seq in self.led.values() {
            rings.entry(seq.ring).or_insert(seq.delta_us);
        }
        for (ring, delta_us) in rings {
            out.push(Action::SetTimer {
                after_us: delta_us.max(1),
                timer: TimerKind::Delta(ring),
            });
        }
    }
}

impl StateMachine for WbcastNode {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        match event {
            Event::Start => self.on_start(&mut out),
            Event::Message { msg, .. } => self.dispatch_message(now, msg, &mut out),
            Event::Timer(TimerKind::Delta(ring)) => self.heartbeat(now, ring, &mut out),
            // The engine keeps no stable storage and (in this
            // implementation) a static sequencer assignment; other
            // timers, persistence completions and membership events
            // are ring-engine concerns.
            Event::Timer(_)
            | Event::PersistDone(_)
            | Event::CoordinatorChange { .. }
            | Event::MembershipChange { .. } => {}
        }
        out
    }

    fn process_id(&self) -> ProcessId {
        self.me
    }
}

impl AmcastEngine for WbcastNode {
    fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        if groups.is_empty() {
            return Err(MulticastError::NoDestination);
        }
        let mut gamma = groups.to_vec();
        gamma.sort_unstable();
        gamma.dedup();
        let mut proposer_somewhere = false;
        for &g in &gamma {
            let Some(ring_id) = self.config.ring_of_group(g) else {
                return Err(MulticastError::UnknownGroup(g));
            };
            let ring = self.config.ring(ring_id).expect("validated config");
            proposer_somewhere |= ring.roles_of(self.me).is_proposer();
        }
        if !proposer_somewhere {
            return Err(MulticastError::NotAProposer(gamma[0]));
        }
        self.next_seq += 1;
        let id = ValueId::new(self.me, self.next_seq);
        let value = Value::new(id, gamma[0], payload);
        if gamma.iter().any(|g| self.subs.contains_key(g)) {
            self.inflight.insert(id);
        }
        if gamma.len() > 1 {
            self.collecting.insert(
                id,
                Collect {
                    groups: gamma.clone(),
                    acks: BTreeMap::new(),
                },
            );
        }
        let mut out = Vec::new();
        for &g in &gamma {
            let sequencer = self.sequencer_of(g).expect("group has a ring");
            self.route(
                now,
                sequencer,
                WbMessage::Submit {
                    group: g,
                    groups: gamma.clone(),
                    value: value.clone(),
                },
                &mut out,
            );
        }
        Ok((id, out))
    }

    fn engine_name(&self) -> &'static str {
        "wbcast"
    }

    /// Locally submitted values addressed to at least one subscribed
    /// group that have not yet been delivered locally. Submissions to
    /// entirely foreign groups are fire-and-forget (no local delivery
    /// ever confirms them) and are not counted.
    fn backlog(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::config::{single_ring, RingSpec, RingTuning, Roles};
    use std::collections::BTreeMap as Map;

    /// Executes all Send actions at zero latency (in-order), collecting
    /// deliveries per process and counting received engine frames that
    /// reference a value (for genuineness assertions).
    struct Pumped {
        delivered: Map<ProcessId, Vec<(GroupId, u64, ValueId)>>,
        value_frames_at: Map<ProcessId, u64>,
    }

    fn pump(nodes: &mut Map<ProcessId, WbcastNode>, queue: Vec<(ProcessId, Action)>) -> Pumped {
        // FIFO processing: the Action::Send contract promises reliable
        // in-order channels, and the engine's stream frontiers build on
        // exactly that promise.
        let mut queue: std::collections::VecDeque<(ProcessId, Action)> = queue.into();
        let mut result = Pumped {
            delivered: Map::new(),
            value_frames_at: Map::new(),
        };
        let mut steps = 0;
        while let Some((origin, action)) = queue.pop_front() {
            steps += 1;
            assert!(steps < 100_000, "no quiescence");
            match action {
                Action::Send { to, msg } => {
                    if let Message::Engine { payload, .. } = &msg {
                        if frame_references_value(payload.clone()) {
                            *result.value_frames_at.entry(to).or_default() += 1;
                        }
                    }
                    let node = nodes.get_mut(&to).expect("known process");
                    for a in node.on_event(Time::ZERO, Event::Message { from: origin, msg }) {
                        queue.push_back((to, a));
                    }
                }
                Action::Deliver {
                    group,
                    instance,
                    value,
                } => result.delivered.entry(origin).or_default().push((
                    group,
                    instance.value(),
                    value.id,
                )),
                _ => {}
            }
        }
        result
    }

    /// `n_groups` groups; group `g` is served by a dedicated ring whose
    /// members (and subscribers) are `processes[g]`.
    fn disjoint_config(members: &[&[u32]]) -> ClusterConfig {
        let mut b = ClusterConfig::builder();
        for (g, ps) in members.iter().enumerate() {
            let mut spec = RingSpec::new(RingId::new(g as u16));
            for &p in *ps {
                spec = spec.member(ProcessId::new(p), Roles::ALL);
            }
            b = b
                .ring(spec)
                .group(GroupId::new(g as u16), RingId::new(g as u16));
            for &p in *ps {
                b = b.subscribe(ProcessId::new(p), GroupId::new(g as u16));
            }
        }
        b.build().expect("disjoint config")
    }

    fn spawn(config: &ClusterConfig) -> Map<ProcessId, WbcastNode> {
        config
            .processes()
            .into_iter()
            .map(|p| (p, WbcastNode::new(p, config.clone())))
            .collect()
    }

    #[test]
    fn single_group_delivers_in_submission_order_everywhere() {
        let config = single_ring(3, RingTuning::default());
        let mut nodes = spawn(&config);
        let mut queue = Vec::new();
        for proposer in [1u32, 2, 0] {
            let p = ProcessId::new(proposer);
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p).unwrap(),
                Time::ZERO,
                &[GroupId::new(0)],
                Bytes::from(vec![proposer as u8]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p, a)));
        }
        let delivered = pump(&mut nodes, queue).delivered;
        assert_eq!(delivered.len(), 3, "all three subscribers deliver");
        let reference = &delivered[&ProcessId::new(0)];
        assert_eq!(reference.len(), 3);
        for seq in delivered.values() {
            assert_eq!(seq, reference, "identical delivery sequences");
        }
        // Timestamps are dense from 1.
        let ts: Vec<u64> = reference.iter().map(|(_, t, _)| *t).collect();
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    fn multicast_to_unknown_group_fails() {
        let config = single_ring(2, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let err = AmcastEngine::multicast(&mut n, Time::ZERO, &[GroupId::new(7)], Bytes::new())
            .unwrap_err();
        assert_eq!(err, MulticastError::UnknownGroup(GroupId::new(7)));
        let err = AmcastEngine::multicast(&mut n, Time::ZERO, &[], Bytes::new()).unwrap_err();
        assert_eq!(err, MulticastError::NoDestination);
    }

    #[test]
    fn request_is_framed_ordered_and_delivered() {
        let config = single_ring(1, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let out = n.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(9),
                msg: Message::Request {
                    client: ClientId::new(4),
                    request: 1,
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"cmd"),
                },
            },
        );
        // Singleton: submit, order and deliver complete inline.
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Deliver { group, .. } if *group == GroupId::new(0))));
        assert_eq!(n.delivered(), 1);
    }

    #[test]
    fn heartbeats_advance_idle_groups() {
        let config = single_ring(1, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let start = n.on_event(Time::ZERO, Event::Start);
        assert!(start.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                timer: TimerKind::Delta(_),
                ..
            }
        )));
        let out = n.on_event(
            Time::from_millis(50),
            Event::Timer(TimerKind::Delta(RingId::new(0))),
        );
        // Re-armed, and the (self-subscribed) horizon advanced with time.
        assert!(out.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                timer: TimerKind::Delta(_),
                ..
            }
        )));
        assert!(n.horizons()[&GroupId::new(0)] > 0);
    }

    #[test]
    fn observed_timestamps_drag_idle_sequencer_clocks_forward() {
        // Two groups over the same processes; p0 sequences both. A burst
        // into group 0 drives its count-based timestamps far past wall
        // clock; the Lamport receive rule must drag group 1's clock
        // along, so group 1's next heartbeat promise releases the burst
        // instead of capping delivery at the time-based tick rate.
        let mut b = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring));
            for p in 0..2u32 {
                spec = spec.member(ProcessId::new(p), Roles::ALL);
            }
            b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        }
        for p in 0..2u32 {
            for g in 0..2u16 {
                b = b.subscribe(ProcessId::new(p), GroupId::new(g));
            }
        }
        let config = b.build().expect("two-group config");
        let mut nodes = spawn(&config);
        // 40 submissions to group 0 only, all at t=0 (time-based clock
        // floor stays at 1, so timestamps run ahead on counts alone).
        let mut queue = Vec::new();
        let p0 = ProcessId::new(0);
        for i in 0..40u8 {
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p0).unwrap(),
                Time::ZERO,
                &[GroupId::new(0)],
                Bytes::from(vec![i]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p0, a)));
        }
        let delivered = pump(&mut nodes, queue).delivered;
        // One group-1 heartbeat at t=0 must now promise past the burst
        // (clock observed ts=40) and release everything at once.
        let hb = nodes
            .get_mut(&p0)
            .unwrap()
            .on_event(Time::ZERO, Event::Timer(TimerKind::Delta(RingId::new(1))));
        let mut queue: Vec<(ProcessId, Action)> = hb.into_iter().map(|a| (p0, a)).collect();
        queue.retain(|(_, a)| !matches!(a, Action::SetTimer { .. }));
        let late = pump(&mut nodes, queue).delivered;
        let total: usize = [&delivered, &late]
            .iter()
            .flat_map(|d| d.get(&p0))
            .map(|v| v.len())
            .sum();
        assert_eq!(total, 40, "idle group 1 must not throttle group 0's burst");
    }

    /// Three disjoint two-process groups. A message addressed to groups
    /// {0, 1} must be delivered by exactly their four subscribers, in
    /// one consistent position, and group 2's processes must receive no
    /// frame referencing any value — the genuineness property.
    #[test]
    fn multigroup_is_genuine_and_delivered_by_addressed_groups_only() {
        let config = disjoint_config(&[&[0, 1], &[2, 3], &[4, 5]]);
        let mut nodes = spawn(&config);
        let p0 = ProcessId::new(0);
        // A few single-group messages on each addressed group, plus the
        // multi-group message, all initiated by p0 / p2.
        let mut queue = Vec::new();
        for (proposer, groups) in [
            (0u32, vec![GroupId::new(0)]),
            (2, vec![GroupId::new(1)]),
            (0, vec![GroupId::new(0), GroupId::new(1)]),
            (0, vec![GroupId::new(0)]),
            (2, vec![GroupId::new(1)]),
        ] {
            let p = ProcessId::new(proposer);
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p).unwrap(),
                Time::ZERO,
                &groups,
                Bytes::from(vec![proposer as u8]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p, a)));
        }
        let multi_id = ValueId::new(p0, 2); // p0's second submission
        let result = pump(&mut nodes, queue);

        // Genuineness: the outsiders saw no value traffic at all.
        for outsider in [4u32, 5] {
            let p = ProcessId::new(outsider);
            assert_eq!(
                result.value_frames_at.get(&p).copied().unwrap_or(0),
                0,
                "process {p} is outside γ but received value frames"
            );
            assert!(result.delivered.get(&p).is_none_or(|d| d.is_empty()));
        }

        // Exactly the four subscribers of groups 0 and 1 deliver the
        // multi-group message, exactly once each.
        for p in [0u32, 1, 2, 3] {
            let seq = &result.delivered[&ProcessId::new(p)];
            let copies = seq.iter().filter(|(_, _, id)| *id == multi_id).count();
            assert_eq!(copies, 1, "process {p} must deliver the multicast once");
        }

        // Consistent relative order: every process orders the multi
        // message against its group's singles at the same timestamp
        // position, so the (ts, id) keys must agree across groups.
        let key_of = |p: u32| {
            result.delivered[&ProcessId::new(p)]
                .iter()
                .find(|(_, _, id)| *id == multi_id)
                .map(|(_, ts, id)| (*ts, *id))
                .expect("delivered")
        };
        assert_eq!(key_of(0), key_of(2), "same final timestamp in both groups");
        assert_eq!(key_of(0), key_of(1));
        assert_eq!(key_of(2), key_of(3));
    }

    /// Two groups over overlapping subscribers: everyone subscribed to
    /// both groups must deliver the *interleaved* sequence identically,
    /// with multi-group messages appearing exactly once.
    #[test]
    fn multigroup_interleaves_in_one_total_order_at_shared_subscribers() {
        let mut b = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring));
            for p in 0..3u32 {
                spec = spec.member(ProcessId::new((p + u32::from(ring)) % 3), Roles::ALL);
            }
            b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        }
        for p in 0..3u32 {
            for g in 0..2u16 {
                b = b.subscribe(ProcessId::new(p), GroupId::new(g));
            }
        }
        let config = b.build().expect("overlapping config");
        let mut nodes = spawn(&config);
        let mut queue = Vec::new();
        let mut expected = 0usize;
        for (proposer, groups) in [
            (0u32, vec![GroupId::new(0)]),
            (1, vec![GroupId::new(1)]),
            (2, vec![GroupId::new(0), GroupId::new(1)]),
            (0, vec![GroupId::new(1)]),
            (1, vec![GroupId::new(0), GroupId::new(1)]),
            (2, vec![GroupId::new(0)]),
        ] {
            let p = ProcessId::new(proposer);
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p).unwrap(),
                Time::ZERO,
                &groups,
                Bytes::from(vec![proposer as u8]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p, a)));
            expected += 1;
        }
        let mut delivered = pump(&mut nodes, queue).delivered;
        // One heartbeat round: without it a tail value can legitimately
        // stay buffered, waiting for the other group's idle promise
        // (runtimes re-fire Δ timers; the unit pump must do it once).
        let mut queue = Vec::new();
        for (&p, node) in nodes.iter_mut() {
            for ring in 0..2u16 {
                let hb = node.on_event(
                    Time::from_millis(10),
                    Event::Timer(TimerKind::Delta(RingId::new(ring))),
                );
                queue.extend(
                    hb.into_iter()
                        .filter(|a| !matches!(a, Action::SetTimer { .. }))
                        .map(|a| (p, a)),
                );
            }
        }
        for (p, seq) in pump(&mut nodes, queue).delivered {
            delivered.entry(p).or_default().extend(seq);
        }
        let reference = &delivered[&ProcessId::new(0)];
        assert_eq!(reference.len(), expected, "all messages delivered once");
        let unique: BTreeSet<ValueId> = reference.iter().map(|(_, _, id)| *id).collect();
        assert_eq!(unique.len(), expected, "no duplicate deliveries");
        for p in 1..3u32 {
            assert_eq!(
                &delivered[&ProcessId::new(p)],
                reference,
                "identical interleaved sequences at shared subscribers"
            );
        }
    }

    #[test]
    fn backlog_counts_local_submissions_until_delivery() {
        let config = single_ring(3, RingTuning::default());
        let mut nodes = spawn(&config);
        let p1 = ProcessId::new(1);
        // p1 submits but the network has not run yet: one value in
        // flight (p1 subscribes to the group, so delivery will settle
        // it).
        let (_, actions) = AmcastEngine::multicast(
            nodes.get_mut(&p1).unwrap(),
            Time::ZERO,
            &[GroupId::new(0)],
            Bytes::from_static(b"v"),
        )
        .unwrap();
        assert_eq!(AmcastEngine::backlog(nodes.get_mut(&p1).unwrap()), 1);
        let queue = actions.into_iter().map(|a| (p1, a)).collect();
        let delivered = pump(&mut nodes, queue).delivered;
        assert_eq!(delivered[&p1].len(), 1);
        assert_eq!(
            AmcastEngine::backlog(nodes.get_mut(&p1).unwrap()),
            0,
            "delivery settles the backlog"
        );
    }

    #[test]
    fn wire_roundtrip_of_engine_frames() {
        let value = Value::new(
            ValueId::new(ProcessId::new(3), 9),
            GroupId::new(1),
            Bytes::from_static(b"payload"),
        );
        let gamma = vec![GroupId::new(0), GroupId::new(1)];
        for msg in [
            WbMessage::Submit {
                group: GroupId::new(1),
                groups: gamma.clone(),
                value: value.clone(),
            },
            WbMessage::ProposeAck {
                group: GroupId::new(0),
                id: value.id,
                ts: 17,
            },
            WbMessage::Final {
                group: GroupId::new(1),
                id: value.id,
                ts: 18,
            },
            WbMessage::Ordered {
                group: GroupId::new(1),
                ts: 42,
                groups: gamma,
                value,
            },
            WbMessage::Heartbeat {
                group: GroupId::new(0),
                ts: 7,
            },
        ] {
            let Message::Engine { engine, payload } = msg.clone().into_frame() else {
                panic!("expected engine frame");
            };
            assert_eq!(engine, WBCAST_WIRE_ID);
            let carries = !matches!(msg, WbMessage::Heartbeat { .. });
            assert_eq!(frame_references_value(payload.clone()), carries);
            assert_eq!(WbMessage::parse(payload), Some(msg));
        }
        assert_eq!(WbMessage::parse(Bytes::from_static(b"")), None);
        assert_eq!(WbMessage::parse(Bytes::from_static(&[9, 0, 0])), None);
    }
}
