//! A timestamp-based Skeen-style ("white-box") atomic multicast engine
//! with *genuine* multi-group messages.
//!
//! ## Message flow
//!
//! Each multicast group has one *sequencer*: the coordinator of the
//! ring the group maps to in the [`ClusterConfig`]. The sequencer role
//! is **fault-tolerant**: when the coordination service designates a
//! new ring coordinator ([`Event::CoordinatorChange`]), the group's
//! sequencer moves with it — see *Sequencer failover* below.
//!
//! ### Single-group messages (one phase)
//!
//! ```text
//!  proposer            sequencer of g                subscribers of g
//!     │  Submit(γ={g})     │                               │
//!     ├───────────────────▶│ ts := clock(g)++              │
//!     │                    ├── Ordered(g, ts, γ, v) ──────▶│  buffer by (ts, id)
//!     │                    ├── Heartbeat(g, promise) ──···▶│  deliver in global
//!     │                                                    │  (ts, id) order
//! ```
//!
//! ### Multi-group messages (Skeen phase 2, the paper's `multicast(γ, m)`)
//!
//! ```text
//!  initiator         sequencer of g₁   sequencer of g₂     subscribers of γ
//!     │  Submit(γ, v)      │                 │                   │
//!     ├───────────────────▶│ ts₁ := clock₁++ │                   │
//!     ├─────────────────────────────────────▶│ ts₂ := clock₂++   │
//!     │◀─ ProposeAck(ts₁) ─┤                 │                   │
//!     │◀─ ProposeAck(ts₂) ──────────────────-┤                   │
//!     │  fts := max(ts₁, ts₂)                │                   │
//!     ├─ Final(fts) ──────▶│                 │                   │
//!     ├─ Final(fts) ──────────────────────--▶│                   │
//!     │                    ├── Ordered(g₁, fts, γ, v) ──────────▶│ deliver once at
//!     │                    │                 ├─ Ordered(g₂,…) ──▶│ global (fts, id)
//! ```
//!
//! 1. **Submit** — the initiator assigns the value its [`ValueId`] and
//!    sends it to the sequencer of *each* addressed group. This is the
//!    step that makes the engine *genuine*: only the addressed groups'
//!    processes are ever involved with the message.
//! 2. **Propose** — each addressed sequencer assigns the value the next
//!    per-group timestamp. For a single-group message that timestamp is
//!    final immediately; for a multi-group message the sequencer holds
//!    the value as *undecided* and reports the proposal back to the
//!    initiator.
//! 3. **Decide** — the initiator collects one proposal per addressed
//!    group and sends the maximum back as the final timestamp. Each
//!    sequencer re-keys the value at the final timestamp, advances its
//!    clock past it (Lamport receive rule), and releases its ordered
//!    stream strictly in `(timestamp, id)` order — values keyed above a
//!    still-undecided proposal wait, because that proposal's final
//!    timestamp may land below them.
//! 4. **Deliver** — every subscriber buffers `Ordered` values and
//!    delivers in the global lexicographic `(timestamp, id)` order. A
//!    buffered value is deliverable once every other subscribed group's
//!    *frontier* (largest key observed from its sequencer, streams are
//!    released in key order over reliable FIFO channels) has reached the
//!    value's key. A subscriber of several addressed groups receives one
//!    copy per stream and delivers exactly once: only the copy in the
//!    smallest addressed group it subscribes to enters the buffer, the
//!    others merely advance frontiers.
//! 5. **Heartbeat** — sequencers of idle groups periodically promise
//!    "all my future timestamps exceed X" so that other groups'
//!    deliveries are never blocked by an idle group: the analogue of
//!    Multi-Ring Paxos rate leveling, paced by the ring's Δ. A promise
//!    never overtakes an undecided proposal.
//! 6. **Release acknowledgement** — when a sequencer emits a value into
//!    its ordered stream it also sends the initiator a `FinalAck`.
//!    Released frames are never lost (reliable FIFO channels), so a
//!    `FinalAck` from every addressed group means the value is safe and
//!    the initiator can stop tracking it.
//!
//! ## Sequencer failover
//!
//! A crashed sequencer must not stall the groups it ordered, nor the
//! multi-group rounds it participated in. Three mechanisms cooperate
//! (the failover protocol of *White-Box Atomic Multicast* (Gotsman et
//! al., DSN 2019), adapted to this engine's single-process sequencers):
//!
//! * **Takeover / resign.** On [`Event::CoordinatorChange`] the named
//!   process adopts the sequencer role for the ring's groups, resuming
//!   each group's clock at a safe point: past every key and promise it
//!   has *observed* for the group, and past the hybrid-clock floor.
//!   Frames carry a **sequencer epoch** (bumped per takeover) so
//!   subscribers re-anchor their frontier to the new stream and fence
//!   frames from deposed sequencers. The deposed process (if alive)
//!   drops its sequencer state. A fresh sequencer holds releases and
//!   promises for a short recovery window ([`TAKEOVER_GRACE_DELTAS`] ×
//!   Δ) so that recovered values — whose already-decided timestamps may
//!   be small — re-enter the stream *before* the frontier advances past
//!   them, keeping the released-in-key-order invariant.
//! * **Initiator retries.** Every local submission is tracked until
//!   each addressed group confirms release. Unconfirmed groups are
//!   probed with retransmitted `Submit`s every [`RETRY_DELTAS`] × Δ,
//!   routed to the *current* sequencer; a `CoordinatorChange` voids
//!   acks obtained from the previous sequencer and re-runs the round
//!   immediately. Receivers deduplicate: a retransmitted `Submit` never
//!   gets a second timestamp (the pending proposal or decided value is
//!   re-acknowledged instead) and a duplicate `Final` is idempotent. A
//!   decided final timestamp is immutable — a post-failover re-proposal
//!   is answered by re-issuing the original `Final`.
//! * **Subscriber dedup.** Subscribers remember delivered value ids, so
//!   a value re-released by a new sequencer (because the initiator
//!   could not know the old one had already released it) is delivered
//!   exactly once; extra copies only advance frontiers.
//!
//! ## Initiator crash recovery
//!
//! A multi-group round is driven by its initiator, and an initiator
//! that crashes before distributing the final timestamp would leave an
//! *orphan*: an undecided proposal that gates every later key of each
//! addressed group's stream forever. The group recovers the round
//! itself — the in-flight state is replicated across the addressed
//! sequencers, so any of them can finish what the initiator started
//! (the failover idea of *White-Box Atomic Multicast*, applied to the
//! initiator role):
//!
//! * **Detection.** A sequencer presumes a proposal orphaned when the
//!   coordination service reports its initiator crashed
//!   ([`Event::MembershipChange`] down-sets; a `CoordinatorChange`
//!   deposing the initiator's process counts too) — or, as a backstop
//!   that needs no failure detector, when the initiator shows no sign
//!   of life (no `Final`, no retransmitted `Submit`) for
//!   [`ORPHAN_DELTAS`] × Δ.
//! * **Recovery exchange.** The detecting sequencer assumes the
//!   initiator role for the round: it asks every addressed group's
//!   current sequencer for its state (`OrphanQuery` → `OrphanState`:
//!   decided at some timestamp / proposed at some timestamp / never
//!   seen). If some group never saw the `Submit`, the recoverer
//!   re-submits the orphan's value there on its behalf — id-based
//!   dedup guarantees the round is never forked — and re-queries. Once
//!   every group holds the value, the recoverer completes the round
//!   deterministically (`OrphanFinal`): an already-decided timestamp
//!   wins (decided timestamps are immutable), otherwise the maximum
//!   over the proposals — byte-for-byte the decision the initiator
//!   would have made. The round is then tracked until every addressed
//!   group reports the value *released* into its stream (from where it
//!   can no longer be lost) — the recoverer's analogue of the
//!   `FinalAck` a live initiator retries toward: a decision frame that
//!   dies with an addressed sequencer is re-driven on the next
//!   Δ-paced re-probe, re-seeding an empty-handed replacement and
//!   re-deciding at the recorded timestamp, never losing the round in
//!   one group while another delivers it.
//! * **Convergence.** Several sequencers may recover the same orphan
//!   concurrently, and a falsely-suspected (or revived) initiator may
//!   keep retrying its own round: all of them compute the same final
//!   timestamp from the same immutable proposals, every frame is
//!   deduplicated exactly like initiator retries (`OrphanFinal` is a
//!   `Final`: first decide wins, duplicates re-acknowledge), and
//!   `OrphanState` replies are fenced by a per-attempt counter so
//!   answers stranded at a deposed sequencer cannot leak into a later
//!   collection. Once a sequencer has *answered* an `OrphanQuery` for a
//!   pending proposal, recovery owns that round: the proposal is
//!   **fenced** — a plain `Final` from the suspected initiator is
//!   dropped (its view may predate a sequencer failover that
//!   re-proposed the value elsewhere, so letting it race the recoverer
//!   could decide two different timestamps in two groups), and only an
//!   `OrphanFinal` decides. A round is therefore never aborted in one
//!   group and delivered in another — it is always *completed*,
//!   exactly once.
//!
//! ## Checkpointing, resync and bounded state
//!
//! The engine implements the generic checkpoint/trim surface of
//! [`AmcastEngine`] (see the crate docs), which both bounds the
//! protocol's per-key bookkeeping and gives crashed subscribers an
//! exact rejoin path:
//!
//! * **Watermark.** Per subscribed group, the *delivery mark*: the
//!   largest timestamp whose whole prefix has been delivered locally
//!   (the frontier, capped below any still-pending value and excluding
//!   a possibly-tied boundary timestamp). The engine's
//!   `checkpoint_state` adds the residual delivered-id records above
//!   the marks plus the local id-sequence floor, making restores exact
//!   even at timestamp ties.
//! * **Resync.** A restarted subscriber installs its latest durable
//!   checkpoint and asks each subscribed group's sequencer to replay
//!   its released stream above the restored mark (`Resync`: the
//!   sequencer retains every released value above the collective
//!   checkpoint watermark exactly for this). Deliveries stay
//!   **held** until the replay's `ResyncDone` terminator arrives: live
//!   frames received before the replay advance frontiers past keys the
//!   replay still carries, so only the terminator restores the
//!   frontier's "nothing smaller can arrive" meaning — this is what
//!   makes the recovered delivery sequence byte-identical to the
//!   survivors', not merely the same set.
//! * **Trim.** After a checkpoint becomes durable, the subscriber
//!   prunes its delivered-id dedup below the watermark and reports the
//!   marks (`CkptMark`) to the sequencers, which prune their decided-id
//!   maps and released history below the *minimum over the live
//!   subscribers* — conservative (no quorum), so any live subscriber
//!   can still resync from its own latest durable checkpoint.
//!   Subscribers the coordination service reports crashed are dropped
//!   from the minimum, so one permanent death does not freeze the
//!   floor and grow sequencer state forever.
//! * **Truncation is loud.** Whenever a sequencer's retained history
//!   no longer reaches back to a resync's requested position — the
//!   [`UNREPORTED_HISTORY_CAP`] eviction in never-checkpointing
//!   deployments, or pruning that advanced past a dead subscriber's
//!   stale mark before it revived — the replay terminator carries the
//!   gap's extent, and the recovering subscriber **re-anchors past the
//!   hole** and counts the event
//!   ([`WbcastNode::resync_truncations`]) instead of delivering a
//!   gapped stream behind a terminator that claims completeness.
//!
//! The model's remaining assumptions: the takeover resume point exceeds
//! every timestamp the crashed sequencer exposed (guaranteed by the
//! hybrid clock whenever the election timeout exceeds the count-driven
//! clock skew — in a full deployment the counter is Paxos-replicated
//! inside the group instead); a *sequencer* crash also loses its
//! released-value history, so subscribers that crash while the
//! replacement leads can only resync what the replacement released
//! itself (replicating the history inside the group goes together with
//! counter replication); dedup pruning assumes a failover re-release
//! or orphan-recovery re-submission of an old value lands within one
//! checkpoint interval of its re-probe (the takeover grace window and
//! the orphan timeout are orders of magnitude shorter than any
//! sensible checkpoint interval); a decided-wins re-injection into a
//! group whose proposal died with its previous sequencer lands inside
//! the replacement's takeover hold ([`TAKEOVER_GRACE_DELTAS`] exceeds
//! the orphan timeout exactly for this) — only if the recovery signal
//! itself is delayed past that window (e.g. lost membership events)
//! can the re-keyed release land below the new stream's frontier; and
//! while the fence serializes the initiator against recovery, two
//! *concurrent recoverers* whose state snapshots were split by a
//! second sequencer failover in the middle of recovery can still race
//! their decisions. Making those last two windows exact needs the
//! final timestamp agreed inside the group, i.e. the paper's full
//! in-group replication of the initiator state, which goes together
//! with the counter/history replication above.
//!
//! Timestamps are Lamport-style hybrid clocks: they advance with
//! submissions *and* with elapsed time (in a fixed quantum shared by
//! every group, [`CLOCK_QUANTUM_US`]), so timestamps of different groups
//! stay loosely aligned without any cross-group communication.
//!
//! Compared with the ring engine, a multi-group message costs two extra
//! message delays (propose/decide) but involves *only* the addressed
//! groups, where Multi-Ring Paxos must route it through a covering
//! (global) ring that every replica subscribes to — the scalability
//! bottleneck the paper's Figure 4 measures.
//!
//! All engine traffic travels in opaque
//! [`Message::Engine`] frames
//! with wire id [`WBCAST_WIRE_ID`], so every existing runtime
//! (simulator, TCP transport) carries it unchanged.

use crate::engine::AmcastEngine;
use crate::telemetry::{
    EngineTelemetry, HealthIssue, HealthReport, RecoveryCounters, TelemetrySnapshot, STALL_DELTAS,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use multiring_paxos::app::encode_command;
use multiring_paxos::config::ClusterConfig;
use multiring_paxos::event::{Action, Event, Message, StateMachine, TimerKind};
use multiring_paxos::node::MulticastError;
use multiring_paxos::types::{
    Ballot, ClientId, GroupId, InstanceId, ProcessId, RingId, Time, Value, ValueId,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Wire id of this engine inside [`Message::Engine`] frames.
pub const WBCAST_WIRE_ID: u8 = 1;

const TAG_SUBMIT: u8 = 1;
const TAG_ORDERED: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_PROPOSE_ACK: u8 = 4;
const TAG_FINAL: u8 = 5;
const TAG_FINAL_ACK: u8 = 6;
const TAG_RESYNC: u8 = 7;
const TAG_CKPT_MARK: u8 = 8;
const TAG_RESYNC_DONE: u8 = 9;
const TAG_ORPHAN_QUERY: u8 = 10;
const TAG_ORPHAN_STATE: u8 = 11;
const TAG_ORPHAN_FINAL: u8 = 12;

/// Initiator retry pacing: unconfirmed `Submit`/`Final` rounds are
/// re-probed every this-many Δ of the addressed group's ring.
pub const RETRY_DELTAS: u64 = 4;

/// Orphan timeout, in Δ of the proposing sequencer's ring: a
/// multi-group proposal whose initiator has shown no sign of life (no
/// `Final`, no retransmitted `Submit`) for this long is presumed
/// orphaned, and the sequencer holding it assumes the initiator role
/// for the round (see *Initiator crash recovery* in the module docs).
/// Three full retry periods mean a live initiator has had several
/// chances to refresh the proposal before recovery ever fires — and a
/// spurious recovery of a live round is harmless anyway (the exchange
/// is idempotent and decides exactly what the initiator would).
pub const ORPHAN_DELTAS: u64 = 3 * RETRY_DELTAS;

/// A fresh sequencer's recovery window, in Δ of its ring: releases and
/// heartbeat promises are held this long after takeover so that
/// decided values re-injected at their original (possibly small)
/// timestamps re-enter the stream *before* the frontier advances past
/// them. Two sources re-inject: a live initiator re-running its
/// interrupted rounds (re-probes fire inline on `CoordinatorChange`,
/// then every [`RETRY_DELTAS`] × Δ), and orphan recovery acting for a
/// dead initiator — which fires up to [`ORPHAN_DELTAS`] × Δ after the
/// initiator's last sign of life. The window exceeds the orphan
/// timeout by a retry period so that even a decided-wins re-injection
/// of a round whose proposal died with this group's previous sequencer
/// lands while the stream is still held, keeping the
/// released-in-key-order invariant.
pub const TAKEOVER_GRACE_DELTAS: u64 = ORPHAN_DELTAS + RETRY_DELTAS;

// The recovery-window algebra above is load-bearing: a takeover grace
// shorter than the orphan timeout plus one retry period could advance
// the frontier past a re-injected decided value, and an orphan timeout
// at or below the retry period would recover live rounds constantly.
// The wire-conformance lint (`mrp-check`) checks these assertions stay
// present.
const _: () = assert!(TAKEOVER_GRACE_DELTAS >= ORPHAN_DELTAS + RETRY_DELTAS);
const _: () = assert!(ORPHAN_DELTAS > RETRY_DELTAS);

/// Cap on a sequencer's retained released-value history while **not**
/// every subscriber of the group participates in checkpointing (has
/// sent at least one `CkptMark`): without the reports, nothing ever
/// authorizes a prune, and retaining the full stream would grow memory
/// with uptime in deployments that never checkpoint (bare engine nodes,
/// benches). A resync against a capped history replays best-effort —
/// a subscriber that never checkpointed could not have been made whole
/// before this PR either (no replay path existed at all). Checkpointing
/// deployments are unaffected once every subscriber has reported:
/// pruning then follows the collective watermark exactly.
pub const UNREPORTED_HISTORY_CAP: usize = 4096;

/// A global delivery key: final timestamp, tie-broken by the value id
/// (final timestamps of multi-group messages can collide, even within
/// one group's stream).
type Key = (u64, ValueId);

/// The engine's private messages, carried inside [`Message::Engine`].
#[derive(Clone, PartialEq, Debug)]
enum WbMessage {
    /// The initiator submits a value to the sequencer of `group`, one of
    /// the addressed groups `groups` (γ).
    Submit {
        group: GroupId,
        groups: Vec<GroupId>,
        value: Value,
    },
    /// A sequencer's timestamp proposal for a multi-group value, sent
    /// back to the initiator.
    ProposeAck {
        group: GroupId,
        id: ValueId,
        ts: u64,
    },
    /// The initiator's decision: the final (maximum) timestamp for a
    /// multi-group value, sent to each addressed sequencer.
    Final {
        group: GroupId,
        id: ValueId,
        ts: u64,
    },
    /// The sequencer's confirmation to the initiator that the value was
    /// released into `group`'s ordered stream at timestamp `ts`
    /// (single-group values confirm at release too). Stops the
    /// initiator's retransmissions for that group.
    FinalAck {
        group: GroupId,
        id: ValueId,
        ts: u64,
    },
    /// A sequencer's ordering decision at the final timestamp, fanned
    /// out to the group's subscribers in strictly increasing key order.
    /// `epoch` identifies the sequencer generation (bumped on
    /// takeover), fencing deposed sequencers at subscribers.
    Ordered {
        group: GroupId,
        epoch: u32,
        ts: u64,
        groups: Vec<GroupId>,
        value: Value,
    },
    /// The sequencer's promise that all future timestamps of `group`
    /// are strictly greater than `ts`, stamped with its epoch.
    Heartbeat { group: GroupId, epoch: u32, ts: u64 },
    /// A subscriber restarting from a checkpoint asks `group`'s
    /// sequencer to replay its released stream above `from_ts` (the
    /// restored checkpoint's delivery mark) from the retained
    /// released-value history.
    Resync { group: GroupId, from_ts: u64 },
    /// A subscriber reports the delivery mark of its latest **durable**
    /// checkpoint for `group`. Once every subscriber of the group has
    /// reported, the sequencer prunes its decided-id map and released
    /// history below the minimum — the engine-generic analogue of the
    /// ring engine's coordinated trim (Predicate 2), conservative (min
    /// over *all* subscribers, not a quorum) so a lagging or crashed
    /// subscriber can always still resync.
    CkptMark { group: GroupId, ts: u64 },
    /// Terminates a [`WbMessage::Resync`] replay: everything the
    /// sequencer had released for `group` has been retransmitted, and
    /// its promise stands at `ts`. Until this frame arrives, the
    /// restarting subscriber must not deliver — frames received before
    /// the replay (live releases, heartbeats with post-crash promises)
    /// advance frontiers past keys the replay still carries, so the
    /// frontiers only regain their "nothing smaller can arrive" meaning
    /// here. `gap_to` is zero when the replay is prefix-complete from
    /// the requested position; otherwise the sequencer has discarded
    /// history up to `gap_to` (capped retention, or pruning authorized
    /// by the live subscribers' checkpoints) and values in
    /// `(from_ts, gap_to]` may be missing from the replay — the
    /// recovering subscriber must not pretend its stream has no hole.
    ResyncDone {
        group: GroupId,
        epoch: u32,
        ts: u64,
        gap_to: u64,
    },
    /// Orphan recovery, step 1: a sequencer acting as recovery
    /// initiator for the presumed-orphaned round `id` asks `group`'s
    /// sequencer for its state. `attempt` fences replies: stale answers
    /// from a previous recovery attempt (possibly by a since-deposed
    /// sequencer) must not leak into a later collection.
    OrphanQuery {
        group: GroupId,
        id: ValueId,
        attempt: u32,
    },
    /// Orphan recovery, step 2: `group`'s sequencer reports what it
    /// holds for `id` — a decided final timestamp, a still-undecided
    /// proposal, or nothing at all (it never saw the `Submit`, or a
    /// replacement sequencer lost it with its predecessor).
    OrphanState {
        group: GroupId,
        id: ValueId,
        attempt: u32,
        state: OrphanSt,
    },
    /// Orphan recovery, step 3: the recoverer's decision — the final
    /// timestamp for the round, computed exactly as the crashed
    /// initiator would have (any already-decided timestamp wins,
    /// otherwise the maximum over every addressed group's proposal).
    /// Handled like [`WbMessage::Final`]: first decide wins, duplicates
    /// are idempotent.
    OrphanFinal {
        group: GroupId,
        id: ValueId,
        ts: u64,
    },
}

/// A sequencer's state for an orphaned round, reported in
/// [`WbMessage::OrphanState`].
#[derive(Clone, Copy, PartialEq, Debug)]
enum OrphanSt {
    /// No trace of the value: the `Submit` never arrived (or died with
    /// a deposed sequencer). The recoverer re-submits on the orphan's
    /// behalf.
    Unknown,
    /// An undecided proposal at this timestamp.
    Proposed(u64),
    /// Decided at this final timestamp (immutable), but not yet
    /// released into the group's stream (gated behind earlier keys).
    /// The value could still be lost with this sequencer, so the
    /// recoverer keeps tracking the round.
    Decided(u64),
    /// Decided *and* released into the group's ordered stream at this
    /// final timestamp. Released frames are never lost (reliable FIFO
    /// channels), so the value is safe in this group: the recoverer's
    /// release-confirmation — the analogue of the `FinalAck` a live
    /// initiator waits for before it stops retrying.
    Released(u64),
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    buf.put_u32_le(v.id.proposer.value());
    buf.put_u64_le(v.id.seq);
    buf.put_u16_le(v.group.value());
    buf.put_u32_le(v.payload.len() as u32);
    buf.put_slice(&v.payload);
}

fn get_value(buf: &mut Bytes) -> Option<Value> {
    if buf.remaining() < 4 + 8 + 2 + 4 {
        return None;
    }
    let proposer = ProcessId::new(buf.get_u32_le());
    let seq = buf.get_u64_le();
    let group = GroupId::new(buf.get_u16_le());
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let payload = buf.copy_to_bytes(len);
    Some(Value::new(ValueId::new(proposer, seq), group, payload))
}

fn put_groups(buf: &mut BytesMut, groups: &[GroupId]) {
    buf.put_u16_le(groups.len() as u16);
    for g in groups {
        buf.put_u16_le(g.value());
    }
}

fn get_groups(buf: &mut Bytes) -> Option<Vec<GroupId>> {
    if buf.remaining() < 2 {
        return None;
    }
    let n = buf.get_u16_le() as usize;
    if buf.remaining() < 2 * n {
        return None;
    }
    Some((0..n).map(|_| GroupId::new(buf.get_u16_le())).collect())
}

fn put_id(buf: &mut BytesMut, id: ValueId) {
    buf.put_u32_le(id.proposer.value());
    buf.put_u64_le(id.seq);
}

fn get_id(buf: &mut Bytes) -> Option<ValueId> {
    if buf.remaining() < 4 + 8 {
        return None;
    }
    let proposer = ProcessId::new(buf.get_u32_le());
    Some(ValueId::new(proposer, buf.get_u64_le()))
}

impl WbMessage {
    /// Wraps this message into the shared [`Message`] vocabulary.
    fn into_frame(self) -> Message {
        let mut buf = BytesMut::new();
        match &self {
            WbMessage::Submit {
                group,
                groups,
                value,
            } => {
                buf.put_u8(TAG_SUBMIT);
                buf.put_u16_le(group.value());
                put_groups(&mut buf, groups);
                put_value(&mut buf, value);
            }
            WbMessage::ProposeAck { group, id, ts } => {
                buf.put_u8(TAG_PROPOSE_ACK);
                buf.put_u16_le(group.value());
                put_id(&mut buf, *id);
                buf.put_u64_le(*ts);
            }
            WbMessage::Final { group, id, ts } => {
                buf.put_u8(TAG_FINAL);
                buf.put_u16_le(group.value());
                put_id(&mut buf, *id);
                buf.put_u64_le(*ts);
            }
            WbMessage::FinalAck { group, id, ts } => {
                buf.put_u8(TAG_FINAL_ACK);
                buf.put_u16_le(group.value());
                put_id(&mut buf, *id);
                buf.put_u64_le(*ts);
            }
            WbMessage::Ordered {
                group,
                epoch,
                ts,
                groups,
                value,
            } => {
                buf.put_u8(TAG_ORDERED);
                buf.put_u16_le(group.value());
                buf.put_u32_le(*epoch);
                buf.put_u64_le(*ts);
                put_groups(&mut buf, groups);
                put_value(&mut buf, value);
            }
            WbMessage::Heartbeat { group, epoch, ts } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u16_le(group.value());
                buf.put_u32_le(*epoch);
                buf.put_u64_le(*ts);
            }
            WbMessage::Resync { group, from_ts } => {
                buf.put_u8(TAG_RESYNC);
                buf.put_u16_le(group.value());
                buf.put_u64_le(*from_ts);
            }
            WbMessage::CkptMark { group, ts } => {
                buf.put_u8(TAG_CKPT_MARK);
                buf.put_u16_le(group.value());
                buf.put_u64_le(*ts);
            }
            WbMessage::ResyncDone {
                group,
                epoch,
                ts,
                gap_to,
            } => {
                buf.put_u8(TAG_RESYNC_DONE);
                buf.put_u16_le(group.value());
                buf.put_u32_le(*epoch);
                buf.put_u64_le(*ts);
                buf.put_u64_le(*gap_to);
            }
            WbMessage::OrphanQuery { group, id, attempt } => {
                buf.put_u8(TAG_ORPHAN_QUERY);
                buf.put_u16_le(group.value());
                put_id(&mut buf, *id);
                buf.put_u32_le(*attempt);
            }
            WbMessage::OrphanState {
                group,
                id,
                attempt,
                state,
            } => {
                buf.put_u8(TAG_ORPHAN_STATE);
                buf.put_u16_le(group.value());
                put_id(&mut buf, *id);
                buf.put_u32_le(*attempt);
                let (kind, ts) = match state {
                    OrphanSt::Unknown => (0u8, 0u64),
                    OrphanSt::Proposed(ts) => (1, *ts),
                    OrphanSt::Decided(ts) => (2, *ts),
                    OrphanSt::Released(ts) => (3, *ts),
                };
                buf.put_u8(kind);
                buf.put_u64_le(ts);
            }
            WbMessage::OrphanFinal { group, id, ts } => {
                buf.put_u8(TAG_ORPHAN_FINAL);
                buf.put_u16_le(group.value());
                put_id(&mut buf, *id);
                buf.put_u64_le(*ts);
            }
        }
        Message::Engine {
            engine: WBCAST_WIRE_ID,
            payload: buf.freeze(),
        }
    }

    /// Parses an engine payload; `None` on malformed or foreign frames.
    fn parse(mut payload: Bytes) -> Option<WbMessage> {
        if payload.remaining() < 1 + 2 {
            return None;
        }
        let tag = payload.get_u8();
        let group = GroupId::new(payload.get_u16_le());
        match tag {
            TAG_SUBMIT => Some(WbMessage::Submit {
                group,
                groups: get_groups(&mut payload)?,
                value: get_value(&mut payload)?,
            }),
            TAG_PROPOSE_ACK => {
                let id = get_id(&mut payload)?;
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::ProposeAck {
                    group,
                    id,
                    ts: payload.get_u64_le(),
                })
            }
            TAG_FINAL => {
                let id = get_id(&mut payload)?;
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::Final {
                    group,
                    id,
                    ts: payload.get_u64_le(),
                })
            }
            TAG_FINAL_ACK => {
                let id = get_id(&mut payload)?;
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::FinalAck {
                    group,
                    id,
                    ts: payload.get_u64_le(),
                })
            }
            TAG_ORDERED => {
                if payload.remaining() < 4 + 8 {
                    return None;
                }
                let epoch = payload.get_u32_le();
                let ts = payload.get_u64_le();
                Some(WbMessage::Ordered {
                    group,
                    epoch,
                    ts,
                    groups: get_groups(&mut payload)?,
                    value: get_value(&mut payload)?,
                })
            }
            TAG_HEARTBEAT => {
                if payload.remaining() < 4 + 8 {
                    return None;
                }
                let epoch = payload.get_u32_le();
                Some(WbMessage::Heartbeat {
                    group,
                    epoch,
                    ts: payload.get_u64_le(),
                })
            }
            TAG_RESYNC => {
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::Resync {
                    group,
                    from_ts: payload.get_u64_le(),
                })
            }
            TAG_CKPT_MARK => {
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::CkptMark {
                    group,
                    ts: payload.get_u64_le(),
                })
            }
            TAG_RESYNC_DONE => {
                if payload.remaining() < 4 + 8 + 8 {
                    return None;
                }
                let epoch = payload.get_u32_le();
                let ts = payload.get_u64_le();
                Some(WbMessage::ResyncDone {
                    group,
                    epoch,
                    ts,
                    gap_to: payload.get_u64_le(),
                })
            }
            TAG_ORPHAN_QUERY => {
                let id = get_id(&mut payload)?;
                if payload.remaining() < 4 {
                    return None;
                }
                Some(WbMessage::OrphanQuery {
                    group,
                    id,
                    attempt: payload.get_u32_le(),
                })
            }
            TAG_ORPHAN_STATE => {
                let id = get_id(&mut payload)?;
                if payload.remaining() < 4 + 1 + 8 {
                    return None;
                }
                let attempt = payload.get_u32_le();
                let kind = payload.get_u8();
                let ts = payload.get_u64_le();
                let state = match kind {
                    0 => OrphanSt::Unknown,
                    1 => OrphanSt::Proposed(ts),
                    2 => OrphanSt::Decided(ts),
                    3 => OrphanSt::Released(ts),
                    _ => return None,
                };
                Some(WbMessage::OrphanState {
                    group,
                    id,
                    attempt,
                    state,
                })
            }
            TAG_ORPHAN_FINAL => {
                let id = get_id(&mut payload)?;
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::OrphanFinal {
                    group,
                    id,
                    ts: payload.get_u64_le(),
                })
            }
            _ => None,
        }
    }
}

/// Whether a wbcast [`Message::Engine`] payload carries or references a
/// multicast value: `Submit`/`Ordered` carry one,
/// `ProposeAck`/`Final`/`FinalAck` and the orphan-recovery exchange
/// (`OrphanQuery`/`OrphanState`/`OrphanFinal`, which travels only
/// between addressed groups' sequencers) reference one by id;
/// heartbeats and the checkpoint traffic (`Resync`/`CkptMark`, which
/// travel only between a group's subscribers and its sequencer) are
/// pure control traffic. Genuineness tests use this to assert that
/// processes outside an addressed group set γ see no protocol traffic
/// for γ's messages.
pub fn frame_references_value(payload: Bytes) -> bool {
    matches!(
        WbMessage::parse(payload),
        Some(
            WbMessage::Submit { .. }
                | WbMessage::Ordered { .. }
                | WbMessage::ProposeAck { .. }
                | WbMessage::Final { .. }
                | WbMessage::FinalAck { .. }
                | WbMessage::OrphanQuery { .. }
                | WbMessage::OrphanState { .. }
                | WbMessage::OrphanFinal { .. }
        )
    )
}

/// Coarse classification of a wbcast [`Message::Engine`] payload by its
/// frame type (`"submit"`, `"ordered"`, `"orphan_query"`, …), `None`
/// for malformed or foreign payloads. Test harnesses use this to
/// target fault injection — e.g. duplicating or reordering exactly the
/// orphan-recovery exchange — without depending on the private wire
/// format.
pub fn frame_kind(payload: Bytes) -> Option<&'static str> {
    Some(match WbMessage::parse(payload)? {
        WbMessage::Submit { .. } => "submit",
        WbMessage::ProposeAck { .. } => "propose_ack",
        WbMessage::Final { .. } => "final",
        WbMessage::FinalAck { .. } => "final_ack",
        WbMessage::Ordered { .. } => "ordered",
        WbMessage::Heartbeat { .. } => "heartbeat",
        WbMessage::Resync { .. } => "resync",
        WbMessage::CkptMark { .. } => "ckpt_mark",
        WbMessage::ResyncDone { .. } => "resync_done",
        WbMessage::OrphanQuery { .. } => "orphan_query",
        WbMessage::OrphanState { .. } => "orphan_state",
        WbMessage::OrphanFinal { .. } => "orphan_final",
    })
}

/// A multi-group value whose final timestamp is still being agreed on
/// (held by the sequencer that proposed for it).
#[derive(Debug)]
struct Proposal {
    /// The timestamp this sequencer proposed (the final one is ≥ it).
    ts: u64,
    /// The value, emitted into the stream once decided.
    value: Value,
    /// The full addressed group set γ.
    groups: Vec<GroupId>,
    /// When the initiator last showed a sign of life for this round
    /// (the proposal's creation, a retransmitted `Submit`), or when the
    /// last orphan-recovery attempt for it started: the clock the
    /// [`ORPHAN_DELTAS`] timeout runs against.
    since: Time,
    /// Set once this sequencer has answered an [`WbMessage::OrphanQuery`]
    /// for the proposal: recovery owns the round from here on. A plain
    /// `Final` from the (possibly falsely-suspected, possibly
    /// stale-viewed) initiator is ignored — only an `OrphanFinal`
    /// decides — so the initiator and a recoverer that re-submitted
    /// after a sequencer failover can never split the round across two
    /// final timestamps by winning the race in different groups.
    /// Duplicate `Submit`s stop refreshing `since` for a fenced
    /// proposal, so if the recoverer dies the orphan timeout re-fires
    /// here no matter how lively the initiator's retries are.
    fenced: bool,
}

/// Per-group sequencer state (held by the group's coordinator).
#[derive(Debug)]
struct Sequencer {
    /// The ring whose Δ paces this group's heartbeats.
    ring: RingId,
    /// Heartbeat interval, microseconds.
    delta_us: u64,
    /// Sequencer generation: 0 for the configured coordinator, bumped
    /// on every takeover. Stamped into `Ordered`/`Heartbeat` frames so
    /// subscribers can fence deposed sequencers.
    epoch: u32,
    /// Next timestamp to assign (timestamps start at 1).
    next_ts: u64,
    /// Highest promise already heartbeated (avoids redundant sends).
    promised: u64,
    /// While set, releases and heartbeat promises are held: the
    /// takeover recovery window, during which initiators re-inject
    /// values whose decided timestamps may sort below the new clock.
    resume_at: Option<Time>,
    /// The group's subscribers, precomputed: the fan-out target of
    /// every `Ordered`/`Heartbeat`, resolved once instead of scanning
    /// the subscription map per message.
    subscribers: Vec<ProcessId>,
    /// Undecided multi-group proposals, by value id.
    pending: BTreeMap<ValueId, Proposal>,
    /// Decided values not yet released to the stream: a value keyed
    /// above an undecided proposal waits, because that proposal's final
    /// timestamp (≥ its proposed one) may still land below.
    outq: BTreeMap<Key, (Value, Vec<GroupId>)>,
    /// Every value this sequencer has decided, id → final timestamp
    /// (single-group values decide at submission, multi-group at
    /// `Final`). Retransmission dedup: a duplicate `Submit` or `Final`
    /// is re-acknowledged from here instead of getting a second
    /// timestamp. Pruned below the collective checkpoint watermark
    /// (see [`WbMessage::CkptMark`]); grows only with the un-checkpointed
    /// window.
    done: BTreeMap<ValueId, u64>,
    /// Released values retained to serve subscriber resyncs after a
    /// crash-restart ([`WbMessage::Resync`]): the group's ordered stream
    /// above the collective checkpoint watermark. Pruned together with
    /// `done` — this is the "retired backlog" a checkpoint lets the
    /// sequencer discard.
    history: BTreeMap<Key, (Value, Vec<GroupId>)>,
    /// Highest released timestamp no longer in `history`: the retained
    /// stream's floor, raised by the [`UNREPORTED_HISTORY_CAP`]
    /// eviction and by checkpoint-authorized pruning. A resync from
    /// below it cannot be made prefix-complete, and its `ResyncDone`
    /// says so (`gap_to`) instead of silently claiming completeness.
    evicted: u64,
    /// The latest durable checkpoint mark each subscriber reported
    /// (`CkptMark`). `done`/`history` are pruned below the minimum over
    /// the subscribers the coordination service considers *alive* once
    /// each of them has reported; a live subscriber that has never
    /// checkpointed keeps the full history available (it would resync
    /// from the very beginning). Subscribers reported crashed
    /// ([`Event::MembershipChange`]) are excluded so a permanent death
    /// no longer freezes the prune floor — if one nevertheless revives
    /// and resyncs from below the advanced floor, the replay signals
    /// the truncation (`gap_to`) instead of leaving a silent hole.
    reported: BTreeMap<ProcessId, u64>,
}

/// The shared time unit of the hybrid clocks, microseconds. Every
/// sequencer ticks in this fixed quantum — *not* in its ring's Δ —
/// so groups with different Δ still advance their timestamps at the
/// same wall-clock rate and no subscriber's delivery of one group can
/// lag another group's clock without bound. Δ only paces how often
/// the promise is *communicated* (heartbeats).
///
/// The quantum also bounds cross-group release: when a busy group's
/// count-driven timestamps outrun an idle group's time-driven promise,
/// the busy group's deliveries at shared subscribers drain at most
/// `1 / CLOCK_QUANTUM_US` values per second (the sequencer's Lamport
/// receive rule lifts this cap entirely when the idle sequencer's process also
/// subscribes to the busy group). One microsecond puts that floor at
/// 10⁶ values/s/group — above any workload this simulator drives — at
/// no cost: timestamps are u64 and their magnitude carries no meaning.
pub const CLOCK_QUANTUM_US: u64 = 1;

impl Sequencer {
    /// Advances the hybrid clock with elapsed time: future timestamps
    /// of this group always exceed `now / CLOCK_QUANTUM_US`, keeping
    /// independent groups loosely aligned so no group waits long on
    /// another.
    fn bump_clock(&mut self, now: Time) {
        let floor = now.as_micros() / CLOCK_QUANTUM_US + 1;
        self.next_ts = self.next_ts.max(floor);
    }

    /// Lamport receive rule: a sequencer that observes another group's
    /// timestamp jumps its own clock past it, so a busy group's
    /// count-driven timestamps never outrun an idle co-located group's
    /// promises (which would cap the busy group's delivery rate at the
    /// time-based tick rate).
    fn observe(&mut self, ts: u64) {
        self.next_ts = self.next_ts.max(ts + 1);
    }

    /// The smallest key an undecided proposal could still finalize at
    /// (its final timestamp is ≥ its proposed one, so keys strictly
    /// below this bound are settled).
    fn undecided_bound(&self) -> Option<Key> {
        self.pending.iter().map(|(&id, p)| (p.ts, id)).min()
    }

    /// Whether every subscriber of the group *not reported crashed* has
    /// reported a durable checkpoint mark at least once (the
    /// precondition for pruning the released history by the collective
    /// watermark; until then the history is bounded by
    /// [`UNREPORTED_HISTORY_CAP`] instead).
    fn all_reported(&self, down: &BTreeSet<ProcessId>) -> bool {
        let mut live = self.subscribers.iter().filter(|p| !down.contains(p));
        live.clone().count() > 0 && live.all(|p| self.reported.contains_key(p))
    }

    /// Prunes the decided-id map and released history once every live
    /// subscriber has reported a durable mark. Two floors cooperate:
    ///
    /// * The **hard floor** — the minimum over *every* reported mark,
    ///   crashed reporters included — is unconditionally prunable: each
    ///   reporter's own durable checkpoint covers it, so no resync ever
    ///   starts below its own mark.
    /// * Above that, the band up to the **live floor** (minimum over
    ///   the live subscribers only) is retained solely as a courtesy to
    ///   dead reporters that may yet revive and resync from their stale
    ///   mark. It is capped at [`UNREPORTED_HISTORY_CAP`] entries:
    ///   a short-downtime restart replays exactly, while a permanent
    ///   death no longer grows `history`/`done` without bound — the
    ///   effective floor advances past the dead reporter's mark, and a
    ///   late revival from below it gets a truncation-flagged replay
    ///   instead of a silent hole.
    fn prune_below_collective_mark(&mut self, down: &BTreeSet<ProcessId>) {
        if !self.all_reported(down) {
            return;
        }
        let Some(live_floor) = self
            .subscribers
            .iter()
            .filter(|p| !down.contains(p))
            .map(|p| self.reported[p])
            .min()
        else {
            return;
        };
        // Every live subscriber has reported (checked above), so the
        // reported set is a non-empty superset of the live marks and
        // its minimum can only sit at or below the live floor.
        let hard_floor = *self
            .reported
            .values()
            .min()
            .expect("all_reported implies a non-empty reported set");
        if hard_floor > 0 {
            self.history.retain(|&(ts, _), _| ts > hard_floor);
            self.evicted = self.evicted.max(hard_floor);
        }
        let band: Vec<Key> = self
            .history
            .range(..=promise_key(live_floor))
            .map(|(&k, _)| k)
            .collect();
        if band.len() > UNREPORTED_HISTORY_CAP {
            let drop = band.len() - UNREPORTED_HISTORY_CAP;
            for key in &band[..drop] {
                self.history.remove(key);
            }
            self.evicted = self.evicted.max(band[drop - 1].0);
        }
        let evicted = self.evicted;
        self.done.retain(|_, fts| *fts > evicted);
    }

    /// The highest timestamp this sequencer may promise: everything
    /// below `next_ts`, capped by undecided proposals (their final
    /// timestamps may equal the proposal) and by unreleased decided
    /// values.
    fn safe_promise(&self) -> u64 {
        let mut promise = self.next_ts - 1;
        if let Some((ts, _)) = self.undecided_bound() {
            promise = promise.min(ts - 1);
        }
        if let Some((&(ts, _), _)) = self.outq.first_key_value() {
            promise = promise.min(ts - 1);
        }
        promise
    }
}

/// Frontier position a heartbeat promise translates to: anything at the
/// promised timestamp (any id) has been ruled out for the future.
fn promise_key(ts: u64) -> Key {
    (ts, ValueId::new(ProcessId::new(u32::MAX), u64::MAX))
}

/// Per-subscribed-group delivery state.
#[derive(Debug)]
struct Subscription {
    /// Highest sequencer epoch observed on this group's stream. Frames
    /// from strictly lower epochs are fenced (a deposed sequencer must
    /// not advance the frontier the new one rebuilds).
    epoch: u32,
    /// Largest key observed from the group's sequencer. The sequencer
    /// releases its stream in strictly increasing key order over a
    /// reliable FIFO channel, so every future arrival is strictly
    /// greater — except recovery re-releases, which only dedup against
    /// it.
    frontier: Key,
    /// Checkpoint floor: values keyed at or below this timestamp are
    /// covered by a restored (or durable) checkpoint and are never
    /// delivered again — a resync replay or stale re-release below it
    /// only advances the frontier.
    floor: u64,
    /// A [`WbMessage::Resync`] is outstanding for this stream: frames
    /// keep buffering and frontiers keep advancing, but nothing is
    /// *delivered* until the [`WbMessage::ResyncDone`] marker restores
    /// the frontier's prefix-completeness guarantee.
    resyncing: bool,
    /// Ordered-but-not-yet-deliverable values, keyed by `(ts, id)`.
    pending: BTreeMap<Key, Value>,
}

impl Default for Subscription {
    fn default() -> Self {
        Self {
            epoch: 0,
            frontier: (0, ValueId::new(ProcessId::new(0), 0)),
            floor: 0,
            resyncing: false,
            pending: BTreeMap::new(),
        }
    }
}

impl Subscription {
    /// The group's current **delivery mark**: the largest timestamp `t`
    /// such that every value of this stream keyed at or below `t` has
    /// been delivered locally (directly or deduplicated against another
    /// subscribed stream) and none will arrive anymore.
    ///
    /// The frontier's own timestamp is excluded unless the frontier is a
    /// heartbeat promise — a future release may still share it with a
    /// larger id — and anything from the first still-pending value
    /// onward is excluded because it has not been executed yet.
    fn delivery_mark(&self) -> u64 {
        // While a resync is outstanding the frontier may stand past
        // values only the pending replay can supply (live heartbeats
        // keep arriving during the hold): the stream's stable prefix is
        // still exactly the restored checkpoint floor. Reporting the
        // frontier here would let a checkpoint claim values the
        // application never executed — and the subsequent trim would
        // floor the replay out, losing them permanently.
        if self.resyncing {
            return self.floor;
        }
        let mut mark = if self.frontier.1 == promise_key(self.frontier.0).1 {
            self.frontier.0
        } else {
            self.frontier.0.saturating_sub(1)
        };
        if let Some((&(ts, _), _)) = self.pending.first_key_value() {
            mark = mark.min(ts.saturating_sub(1));
        }
        mark.max(self.floor)
    }
}

/// The state an initiator keeps per locally submitted value until every
/// addressed group has confirmed its release (and, when a subscribed
/// group is addressed, until local delivery): the retry machinery's
/// unit of work.
#[derive(Debug)]
struct Inflight {
    /// The addressed group set γ, sorted and deduplicated.
    groups: Vec<GroupId>,
    /// The submitted value, kept for retransmission.
    value: Value,
    /// Timestamp proposals collected so far (multi-group round).
    acks: BTreeMap<GroupId, u64>,
    /// The decided final timestamp. Immutable once set: post-failover
    /// re-proposals are answered by re-issuing this decision.
    final_ts: Option<u64>,
    /// Groups that confirmed release (`FinalAck`). A `CoordinatorChange`
    /// voids the confirmation of that ring's groups.
    released: BTreeSet<GroupId>,
    /// Whether γ contains a locally subscribed group (the value then
    /// counts toward `backlog()` until delivered locally).
    local: bool,
    /// Whether the value was delivered locally.
    delivered: bool,
    /// When the value was submitted locally (round-latency attribution
    /// and the stall probe).
    submitted_at: Time,
}

/// A recovery round this process runs on behalf of a presumed-crashed
/// initiator: one [`WbMessage::OrphanQuery`] per addressed group, the
/// collected [`WbMessage::OrphanState`] answers, and — once every group
/// holds the value — the deterministic decision the initiator would
/// have made. Created by the sequencer that detected the orphan; the
/// entry retires only when **every addressed group confirms release**
/// ([`OrphanSt::Released`]) — a fire-and-forget `OrphanFinal` could die
/// with an addressed sequencer that crashed right after answering,
/// permanently losing the round in that group while others deliver.
/// Until then the round is re-probed every orphan-timeout period, and
/// a group whose replacement sequencer lost everything is re-submitted
/// and re-decided at the recorded (immutable) timestamp.
#[derive(Debug)]
struct OrphanRound {
    /// The addressed group set γ (from the orphaned proposal).
    groups: Vec<GroupId>,
    /// The orphaned value, kept for re-submission to groups that never
    /// saw the initiator's `Submit`.
    value: Value,
    /// Fences [`WbMessage::OrphanState`] replies: answers from an
    /// earlier attempt (possibly by a since-deposed sequencer) are
    /// discarded, so a recovery re-run after a `CoordinatorChange`
    /// collects a consistent snapshot.
    attempt: u32,
    /// States collected in the current attempt, one per addressed
    /// group.
    states: BTreeMap<GroupId, OrphanSt>,
    /// The round's final timestamp, once first computed. Immutable: a
    /// later re-probe that has to re-submit the value to an
    /// empty-handed replacement sequencer re-decides at exactly this
    /// timestamp, never at a fresh maximum.
    decided: Option<u64>,
    /// When this round last made progress (attempt started, decision
    /// sent): the clock the Δ-paced re-probe runs against.
    since: Time,
}

/// The per-process state machine of the white-box engine: sequencer
/// roles for the groups this process coordinates, the initiator state
/// for in-flight multi-group submissions, plus the delivery buffer over
/// its subscribed groups.
pub struct WbcastNode {
    me: ProcessId,
    config: ClusterConfig,
    /// Groups this process sequences.
    led: BTreeMap<GroupId, Sequencer>,
    /// Groups this process subscribes to.
    subs: BTreeMap<GroupId, Subscription>,
    /// The believed current coordinator (= sequencer host) per ring,
    /// maintained from [`Event::CoordinatorChange`] notifications.
    coordinators: BTreeMap<RingId, ProcessId>,
    /// Highest sequencer epoch known per ring (observed on frames or
    /// used by a local takeover); a takeover uses the next epoch.
    ring_epochs: BTreeMap<RingId, u32>,
    /// Highest timestamp observed per group, from any frame touching
    /// that group's clock: the takeover resume point.
    observed: BTreeMap<GroupId, u64>,
    /// Ids delivered locally, with the timestamp they delivered at:
    /// exactly-once across failover re-releases and resync replays.
    /// Pruned below the checkpoint watermark on [`AmcastEngine::trim`];
    /// the entries above the watermark travel inside the checkpoint
    /// ([`AmcastEngine::checkpoint_state`]) so recovery stays exact even
    /// when several values share the boundary timestamp.
    delivered_ids: BTreeMap<ValueId, u64>,
    /// Locally submitted values still being tracked (retries, backlog).
    inflight: BTreeMap<ValueId, Inflight>,
    /// Orphan-recovery rounds this process is running on behalf of
    /// presumed-crashed initiators, by orphaned value id.
    orphans: BTreeMap<ValueId, OrphanRound>,
    /// Per-ring down-sets as the coordination service last reported
    /// them ([`Event::MembershipChange`]). Kept per ring — one global
    /// set would let a later event from ring B (whose down-list only
    /// covers B's members) silently overwrite ring A's verdict about a
    /// shared member. A process counts as crashed while *any* ring
    /// reports it down ([`WbcastNode::down_union`]): crashed processes
    /// are excluded from the checkpoint prune floor, and their
    /// in-flight multi-group rounds are recovered without waiting for
    /// the orphan timeout.
    down: BTreeMap<RingId, BTreeSet<ProcessId>>,
    /// Resync replays that terminated with a truncation flag (the
    /// sequencer could not serve a prefix-complete replay): each one is
    /// a re-anchor past a potential delivery gap, surfaced here so
    /// deployments fail loudly instead of proceeding on a silent hole.
    resync_truncations: u64,
    /// Rings with a live Δ heartbeat timer (avoids double-arming when a
    /// resigned ring is re-acquired before its old timer fired).
    delta_armed: BTreeSet<RingId>,
    /// Rings with a live retry timer.
    retry_armed: BTreeSet<RingId>,
    /// Per-proposer sequence numbers for [`ValueId`] assignment.
    next_seq: u64,
    /// Values delivered (progress metric).
    delivered: u64,
    /// Orphan-recovery rounds this process started (first attempts) and
    /// completed (every addressed group confirmed release).
    orphans_started: u64,
    orphans_completed: u64,
    /// Sequencer takeovers this process performed (groups adopted on a
    /// coordinator change).
    takeovers: u64,
    /// Phase-level metrics and the protocol-event trace ring.
    tel: EngineTelemetry,
}

impl fmt::Debug for WbcastNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WbcastNode")
            .field("me", &self.me)
            .field("leads", &self.led.keys().collect::<Vec<_>>())
            .field("subscribes", &self.subs.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl WbcastNode {
    /// Creates the engine for process `me` over `config`. The
    /// sequencer of each group is the coordinator of the group's ring;
    /// subscriptions are the config's learner subscriptions.
    pub fn new(me: ProcessId, config: ClusterConfig) -> Self {
        Self::build(me, config, true)
    }

    /// Creates the engine for a process **restarting after a crash**.
    ///
    /// Identical to [`WbcastNode::new`] except that the process does
    /// *not* assume the sequencer role for the rings it statically
    /// coordinates: its pre-crash ordering state (clock, undecided
    /// proposals, released history) died with it, and a replacement may
    /// have been elected while it was down. Until the coordination
    /// service confirms the role via `Event::CoordinatorChange` — which
    /// runtimes deliver right after the restart's `Event::Start` — the
    /// node neither orders submissions nor answers resyncs for those
    /// groups, so a post-resume [`AmcastEngine::resume`] request stays
    /// outstanding (and is re-issued to whoever the service names)
    /// instead of being answered from a spuriously empty history.
    pub fn recovering(me: ProcessId, config: ClusterConfig) -> Self {
        Self::build(me, config, false)
    }

    fn build(me: ProcessId, config: ClusterConfig, assume_led: bool) -> Self {
        let mut led = BTreeMap::new();
        let mut coordinators = BTreeMap::new();
        for (&group, &ring_id) in config.groups() {
            let ring = config.ring(ring_id).expect("validated config");
            coordinators.insert(ring_id, ring.coordinator());
            if assume_led && ring.coordinator() == me {
                led.insert(
                    group,
                    Sequencer {
                        ring: ring_id,
                        delta_us: ring.tuning().delta_us,
                        epoch: 0,
                        next_ts: 1,
                        promised: 0,
                        resume_at: None,
                        subscribers: config.subscribers_of(group),
                        pending: BTreeMap::new(),
                        outq: BTreeMap::new(),
                        done: BTreeMap::new(),
                        history: BTreeMap::new(),
                        evicted: 0,
                        reported: BTreeMap::new(),
                    },
                );
            }
        }
        let subs = config
            .subscriptions_of(me)
            .into_iter()
            .map(|g| (g, Subscription::default()))
            .collect();
        Self {
            me,
            config,
            led,
            subs,
            coordinators,
            ring_epochs: BTreeMap::new(),
            observed: BTreeMap::new(),
            delivered_ids: BTreeMap::new(),
            inflight: BTreeMap::new(),
            orphans: BTreeMap::new(),
            down: BTreeMap::new(),
            resync_truncations: 0,
            delta_armed: BTreeSet::new(),
            retry_armed: BTreeSet::new(),
            next_seq: 0,
            delivered: 0,
            orphans_started: 0,
            orphans_completed: 0,
            takeovers: 0,
            tel: EngineTelemetry::new(),
        }
    }

    /// The process this engine embodies.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Values delivered so far (progress metric).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The timestamp frontier per subscribed group (inspection: equal
    /// frontiers on two subscribers of a group mean equal histories).
    pub fn horizons(&self) -> BTreeMap<GroupId, u64> {
        self.subs.iter().map(|(&g, s)| (g, s.frontier.0)).collect()
    }

    /// Ordered-but-undeliverable values buffered (backpressure metric).
    pub fn pending_len(&self) -> usize {
        self.subs.values().map(|s| s.pending.len()).sum()
    }

    /// Delivered-id dedup entries currently retained — the per-key
    /// bookkeeping the checkpoint/trim cycle keeps bounded (it grows
    /// only with the window above the last durable checkpoint).
    pub fn dedup_len(&self) -> usize {
        self.delivered_ids.len()
    }

    /// Dedup entries retained for deliveries at or below timestamp
    /// `ts`. After [`AmcastEngine::trim`] at a watermark whose smallest
    /// mark is `ts`, this is zero — the invariant the bounded-state
    /// regression tests assert.
    pub fn dedup_retained_at_or_below(&self, ts: u64) -> usize {
        self.delivered_ids.values().filter(|&&t| t <= ts).count()
    }

    /// Sequencer-side bookkeeping retained for the groups this process
    /// leads: `(decided-id entries, released-history entries)`. Both are
    /// pruned below the collective checkpoint watermark reported by the
    /// groups' subscribers.
    pub fn sequencer_footprint(&self) -> (usize, usize) {
        self.led.values().fold((0, 0), |(d, h), seq| {
            (d + seq.done.len(), h + seq.history.len())
        })
    }

    /// Undecided multi-group proposals held by the groups this process
    /// sequences. A stalled stream always shows up here: every key
    /// above an undecided proposal is gated on it, so a quiesced
    /// cluster must report zero (the liveness invariant the
    /// initiator-crash suite asserts).
    pub fn undecided_len(&self) -> usize {
        self.led.values().map(|s| s.pending.len()).sum()
    }

    /// An FNV-1a fingerprint of the protocol-relevant state: sequencer
    /// clocks/streams, subscriptions, initiator in-flight rounds,
    /// orphan recovery and timer arming. Telemetry, the protocol-event
    /// trace ring and pure progress counters are excluded so schedules
    /// that commute into the same protocol state fingerprint
    /// identically (see [`multiring_paxos::digest`]).
    pub fn state_digest(&self) -> u64 {
        use multiring_paxos::digest::{DigestInto, Fnv1a};
        fn orphan_st(st: &OrphanSt, h: &mut Fnv1a) {
            match st {
                OrphanSt::Unknown => h.write_u8(1),
                OrphanSt::Proposed(ts) => {
                    h.write_u8(2);
                    h.write_u64(*ts);
                }
                OrphanSt::Decided(ts) => {
                    h.write_u8(3);
                    h.write_u64(*ts);
                }
                OrphanSt::Released(ts) => {
                    h.write_u8(4);
                    h.write_u64(*ts);
                }
            }
        }
        let mut h = Fnv1a::new();
        self.me.digest_into(&mut h);
        h.write_usize(self.led.len());
        for (g, s) in &self.led {
            g.digest_into(&mut h);
            s.ring.digest_into(&mut h);
            h.write_u64(s.delta_us);
            h.write_u64(u64::from(s.epoch));
            h.write_u64(s.next_ts);
            h.write_u64(s.promised);
            s.resume_at.digest_into(&mut h);
            h.write_usize(s.pending.len());
            for (id, p) in &s.pending {
                id.digest_into(&mut h);
                h.write_u64(p.ts);
                p.value.digest_into(&mut h);
                p.groups.digest_into(&mut h);
                p.since.digest_into(&mut h);
                p.fenced.digest_into(&mut h);
            }
            s.outq.digest_into(&mut h);
            s.done.digest_into(&mut h);
            s.history.digest_into(&mut h);
            h.write_u64(s.evicted);
            s.reported.digest_into(&mut h);
        }
        h.write_usize(self.subs.len());
        for (g, s) in &self.subs {
            g.digest_into(&mut h);
            h.write_u64(u64::from(s.epoch));
            s.frontier.digest_into(&mut h);
            h.write_u64(s.floor);
            s.resyncing.digest_into(&mut h);
            s.pending.digest_into(&mut h);
        }
        self.coordinators.digest_into(&mut h);
        self.ring_epochs.digest_into(&mut h);
        self.observed.digest_into(&mut h);
        self.delivered_ids.digest_into(&mut h);
        h.write_usize(self.inflight.len());
        for (id, inf) in &self.inflight {
            id.digest_into(&mut h);
            inf.groups.digest_into(&mut h);
            inf.value.digest_into(&mut h);
            inf.acks.digest_into(&mut h);
            inf.final_ts.digest_into(&mut h);
            inf.released.digest_into(&mut h);
            inf.local.digest_into(&mut h);
            inf.delivered.digest_into(&mut h);
            inf.submitted_at.digest_into(&mut h);
        }
        h.write_usize(self.orphans.len());
        for (id, round) in &self.orphans {
            id.digest_into(&mut h);
            round.groups.digest_into(&mut h);
            round.value.digest_into(&mut h);
            h.write_u64(u64::from(round.attempt));
            h.write_usize(round.states.len());
            for (g, st) in &round.states {
                g.digest_into(&mut h);
                orphan_st(st, &mut h);
            }
            round.decided.digest_into(&mut h);
            round.since.digest_into(&mut h);
        }
        self.down.digest_into(&mut h);
        self.delta_armed.digest_into(&mut h);
        self.retry_armed.digest_into(&mut h);
        h.write_u64(self.next_seq);
        h.finish()
    }

    /// Resync replays that terminated with a truncation flag: the
    /// sequencer had discarded *retained* history below the requested
    /// position (capped retention, checkpoint pruning past a dead
    /// subscriber), so the stream was re-anchored past a potential
    /// delivery gap instead of silently claiming prefix-completeness.
    /// Deployments that require gapless recovery must treat a nonzero
    /// count as a failed recovery (re-seed the replica from a peer
    /// checkpoint). Note the flag covers retention-driven truncation
    /// only: a *replacement* sequencer answering from its necessarily
    /// empty history (the deposed incarnation's stream died with it) is
    /// the separate, documented remaining limitation that in-group
    /// history replication will close — it cannot be flagged off the
    /// takeover resume point, whose wall-clock component sits far above
    /// every real timestamp and would write off grace-window
    /// re-injections that other subscribers deliver.
    pub fn resync_truncations(&self) -> u64 {
        self.resync_truncations
    }

    /// The believed current sequencer of `group`: the coordinator the
    /// coordination service last announced for the group's ring.
    fn sequencer_of(&self, group: GroupId) -> Option<ProcessId> {
        let ring = self.config.ring_of_group(group)?;
        self.coordinators.get(&ring).copied()
    }

    /// Records a timestamp exposed for `group` (the takeover resume
    /// point: a new sequencer never assigns at or below it).
    fn note_observed(&mut self, group: GroupId, ts: u64) {
        let o = self.observed.entry(group).or_insert(0);
        *o = (*o).max(ts);
    }

    /// Records a sequencer epoch seen for `group`'s ring.
    fn note_epoch(&mut self, group: GroupId, epoch: u32) {
        if let Some(ring) = self.config.ring_of_group(group) {
            self.note_ring_epoch(ring, epoch);
        }
    }

    /// Records an epoch floor for `ring` (observed on a frame, or the
    /// coordination service's election round).
    fn note_ring_epoch(&mut self, ring: RingId, epoch: u32) {
        let e = self.ring_epochs.entry(ring).or_insert(0);
        *e = (*e).max(epoch);
    }

    /// The retransmission interval for submissions routed to `ring`.
    fn retry_interval(&self, ring: RingId) -> u64 {
        let delta = self
            .config
            .ring(ring)
            .map_or(1_000, |r| r.tuning().delta_us);
        (delta * RETRY_DELTAS).max(1)
    }

    /// Routes an engine message to a peer, or handles it inline when
    /// addressed to this process itself.
    fn route(&mut self, now: Time, to: ProcessId, msg: WbMessage, out: &mut Vec<Action>) {
        if to == self.me {
            self.on_wb_message(now, self.me, msg, out);
        } else {
            out.push(Action::Send {
                to,
                msg: msg.into_frame(),
            });
        }
    }

    /// Sequencer side: a submission for `group`, one of the addressed
    /// groups γ. Single-group values take their timestamp as final and
    /// enter the stream directly; multi-group values become undecided
    /// proposals reported back to the initiator. Retransmissions never
    /// get a second timestamp: a pending proposal is re-acknowledged
    /// and a decided value re-confirmed (once released).
    fn on_submit(
        &mut self,
        now: Time,
        group: GroupId,
        groups: Vec<GroupId>,
        value: Value,
        out: &mut Vec<Action>,
    ) {
        let id = value.id;
        let (reply, release, mark) = {
            let Some(seq) = self.led.get_mut(&group) else {
                // Stale submission (this process no longer sequences the
                // group); the initiator re-routes on CoordinatorChange.
                return;
            };
            if let Some(p) = seq.pending.get_mut(&id) {
                // Duplicate of an undecided proposal: same timestamp.
                // The retransmission is a sign of life from the
                // initiator (or a recoverer), so the orphan clock
                // restarts — unless recovery already owns the round
                // (fenced): then only recovery's own attempts reset it,
                // so a lively-but-fenced initiator cannot postpone the
                // backstop forever.
                if !p.fenced {
                    p.since = now;
                }
                (
                    Some(WbMessage::ProposeAck {
                        group,
                        id,
                        ts: p.ts,
                    }),
                    false,
                    "seq.dedup_submits",
                )
            } else if let Some(&fts) = seq.done.get(&id) {
                // Already decided; confirm only once released (a gated
                // value confirms via flush_group when it releases).
                let released = !seq.outq.contains_key(&(fts, id));
                (
                    released.then_some(WbMessage::FinalAck { group, id, ts: fts }),
                    false,
                    "seq.dedup_submits",
                )
            } else {
                seq.bump_clock(now);
                let ts = seq.next_ts;
                seq.next_ts += 1;
                if groups.len() > 1 {
                    seq.pending.insert(
                        id,
                        Proposal {
                            ts,
                            value,
                            groups,
                            since: now,
                            fenced: false,
                        },
                    );
                    (
                        Some(WbMessage::ProposeAck { group, id, ts }),
                        false,
                        "seq.proposals",
                    )
                } else {
                    seq.done.insert(id, ts);
                    seq.outq.insert((ts, id), (value, groups));
                    (None, true, "seq.ordered_single")
                }
            }
        };
        self.tel.incr(mark, 1);
        if let Some(msg) = reply {
            self.route(now, id.proposer, msg, out);
        }
        if release {
            self.flush_group(now, group, out);
        }
    }

    /// Initiator side: collects one timestamp proposal per addressed
    /// group; once complete, the maximum becomes the final timestamp and
    /// is sent to every addressed sequencer. Once decided, the final
    /// timestamp is immutable: a later ack (a re-proposal by a
    /// post-failover sequencer) is answered by re-issuing the decision.
    fn on_propose_ack(
        &mut self,
        now: Time,
        group: GroupId,
        id: ValueId,
        ts: u64,
        out: &mut Vec<Action>,
    ) {
        self.note_observed(group, ts);
        self.observe_ts(group, ts);
        let Some(entry) = self.inflight.get_mut(&id) else {
            return;
        };
        // A stray or duplicated ack for a group outside γ must not
        // enter the round: it could complete the collection with a
        // bogus maximum.
        if !entry.groups.contains(&group) {
            return;
        }
        let (fts, groups, decided) = if let Some(fts) = entry.final_ts {
            (fts, vec![group], None)
        } else {
            entry.acks.insert(group, ts);
            if entry.acks.len() < entry.groups.len() {
                return;
            }
            let fts = entry.acks.values().copied().max().expect("non-empty acks");
            entry.final_ts = Some(fts);
            (fts, entry.groups.clone(), Some(entry.submitted_at))
        };
        if let Some(submitted_at) = decided {
            self.tel.incr("round.decided", 1);
            self.tel
                .record("round.decide_latency_us", now.since(submitted_at));
        }
        for g in groups {
            let Some(sequencer) = self.sequencer_of(g) else {
                continue;
            };
            self.route(
                now,
                sequencer,
                WbMessage::Final {
                    group: g,
                    id,
                    ts: fts,
                },
                out,
            );
        }
    }

    /// Sequencer side: the final timestamp for an undecided proposal
    /// arrived; re-key the value at it and release what became settled.
    /// A duplicate `Final` is idempotent: re-confirm if released.
    /// `from_recovery` distinguishes an `OrphanFinal` from the
    /// initiator's own `Final`: once recovery has queried a pending
    /// proposal (fenced), only recovery may decide it — a
    /// falsely-suspected initiator racing the recoverer could otherwise
    /// win in one group while the recoverer (whose view may differ
    /// after a sequencer failover re-proposal) wins in another,
    /// splitting the round across two final timestamps.
    fn on_final(
        &mut self,
        now: Time,
        group: GroupId,
        id: ValueId,
        fts: u64,
        from_recovery: bool,
        out: &mut Vec<Action>,
    ) {
        self.note_observed(group, fts);
        self.observe_ts(group, fts);
        if !from_recovery
            && self
                .led
                .get(&group)
                .is_some_and(|seq| seq.pending.get(&id).is_some_and(|p| p.fenced))
        {
            // Recovery owns this round: the initiator's Final is
            // dropped (not even re-acknowledged), and its retries
            // settle once recovery releases the value.
            self.tel.incr("seq.fenced_final_drops", 1);
            return;
        }
        if !from_recovery && self.orphans.get(&id).is_some_and(|r| r.decided.is_none()) {
            // The live initiator is driving this round (it retries
            // until release-time FinalAcks) and recovery has not
            // decided anything yet: stand down. A round recovery
            // already *decided* stays tracked through release
            // confirmation — the initiator may crash again before
            // re-driving a group whose sequencer lost the decision,
            // and only this round's re-probe would re-detect that
            // (the group's replacement holds no pending proposal for
            // the scan to fire on). A recovery decision (`OrphanFinal`)
            // never stands a round down either.
            self.orphans.remove(&id);
        }
        let (reack, decided) = {
            let Some(seq) = self.led.get_mut(&group) else {
                return;
            };
            match seq.pending.remove(&id) {
                Some(p) => {
                    // The final timestamp orders this group's future
                    // assignments after the value (Lamport receive rule
                    // on the group clock).
                    seq.next_ts = seq.next_ts.max(fts + 1);
                    seq.done.insert(id, fts);
                    seq.outq.insert((fts, id), (p.value, p.groups));
                    (None, true)
                }
                None => (
                    seq.done
                        .get(&id)
                        .copied()
                        .filter(|&done_ts| !seq.outq.contains_key(&(done_ts, id))),
                    false,
                ),
            }
        };
        if decided {
            self.tel.incr("seq.finals_applied", 1);
        }
        if let Some(done_ts) = reack {
            self.route(
                now,
                id.proposer,
                WbMessage::FinalAck {
                    group,
                    id,
                    ts: done_ts,
                },
                out,
            );
            return;
        }
        self.flush_group(now, group, out);
    }

    /// Initiator side: `group`'s sequencer released the value into its
    /// stream; stop retransmitting toward it. Once every addressed
    /// group has confirmed (and the value was delivered locally, when a
    /// subscribed group is addressed), the tracking entry retires.
    fn on_final_ack(&mut self, now: Time, group: GroupId, id: ValueId, ts: u64) {
        self.note_observed(group, ts);
        self.observe_ts(group, ts);
        let Some(entry) = self.inflight.get_mut(&id) else {
            return;
        };
        if !entry.groups.contains(&group) {
            return;
        }
        let fresh = entry.released.insert(group);
        let fully_released = entry.released.len() == entry.groups.len();
        let retire = fully_released && (!entry.local || entry.delivered);
        let submitted_at = entry.submitted_at;
        if fresh && fully_released {
            // The round is safe in every addressed group's stream:
            // submit→release is the initiator's view of round latency.
            self.tel.incr("round.released", 1);
            self.tel
                .record("round.release_latency_us", now.since(submitted_at));
        }
        if retire {
            self.inflight.remove(&id);
        }
    }

    // --- initiator crash recovery (orphaned multi-group rounds) -----
    //
    // A multi-group round whose initiator crashed before distributing
    // the final timestamp would stall every addressed group's stream
    // behind the undecided proposal forever. Any sequencer holding such
    // a proposal eventually assumes the initiator role for the round:
    // it collects every addressed sequencer's state for the value
    // (`OrphanQuery`/`OrphanState`), re-submits on the orphan's behalf
    // to groups that never saw the `Submit` (id-based dedup makes the
    // re-submission safe), and — once every group holds the value —
    // completes the round deterministically (`OrphanFinal`): an
    // already-decided timestamp wins, otherwise the maximum over the
    // proposals, exactly the initiator's own rule. Concurrent
    // recoverers therefore decide identically, duplicates are absorbed
    // by the same dedup that protects initiator retries, and a decided
    // timestamp is never overwritten (first decide wins at each
    // sequencer).

    /// Starts (or re-runs) an orphan-recovery round for `id`: bumps the
    /// attempt — fencing any state replies still in flight from a
    /// previous attempt — and queries the current sequencer of every
    /// addressed group.
    fn start_orphan_recovery(
        &mut self,
        now: Time,
        id: ValueId,
        value: Value,
        groups: Vec<GroupId>,
        out: &mut Vec<Action>,
    ) {
        let round = self.orphans.entry(id).or_insert(OrphanRound {
            groups: groups.clone(),
            value,
            attempt: 0,
            states: BTreeMap::new(),
            decided: None,
            since: now,
        });
        round.attempt += 1;
        round.states.clear();
        round.since = now;
        let attempt = round.attempt;
        if attempt == 1 {
            self.orphans_started += 1;
            self.tel.incr("orphan.rounds_started", 1);
            self.tel.trace(now, "orphan.start", None, id.seq);
        } else {
            self.tel.incr("orphan.reprobes", 1);
        }
        for g in groups {
            let Some(sequencer) = self.sequencer_of(g) else {
                continue;
            };
            self.route(
                now,
                sequencer,
                WbMessage::OrphanQuery {
                    group: g,
                    id,
                    attempt,
                },
                out,
            );
        }
    }

    /// Kicks off recovery for every pending proposal of this process's
    /// sequencers that matches `orphaned` (called with the proposal's
    /// ring, its ring's Δ, the value id, and the proposal itself).
    /// Matched proposals get their liveness clock reset — a recovery
    /// attempt is progress — before the exchange starts.
    fn kick_orphans(
        &mut self,
        now: Time,
        out: &mut Vec<Action>,
        mut orphaned: impl FnMut(RingId, u64, ValueId, &Proposal) -> bool,
    ) {
        let mut stale: Vec<(ValueId, Value, Vec<GroupId>)> = Vec::new();
        for seq in self.led.values_mut() {
            let (ring, delta_us) = (seq.ring, seq.delta_us);
            for (&id, p) in &mut seq.pending {
                if orphaned(ring, delta_us, id, p) {
                    p.since = now;
                    stale.push((id, p.value.clone(), p.groups.clone()));
                }
            }
        }
        for (id, value, gamma) in stale {
            self.start_orphan_recovery(now, id, value, gamma, out);
        }
    }

    /// Re-runs recovery for every pending proposal this process's
    /// sequencers hold whose initiator is in `suspects` (the
    /// coordination service reported them crashed): the fast path that
    /// skips the orphan timeout.
    fn recover_orphans_of(
        &mut self,
        now: Time,
        suspects: &BTreeSet<ProcessId>,
        out: &mut Vec<Action>,
    ) {
        self.kick_orphans(now, out, |_, _, id, _| suspects.contains(&id.proposer));
    }

    /// The Δ-paced backstop: proposals of the led groups of `ring`
    /// whose initiator has shown no sign of life for
    /// [`ORPHAN_DELTAS`] × Δ are presumed orphaned and recovered. This
    /// catches what no crash notification can: initiators that are not
    /// ring members anywhere, lost notifications, recovery exchanges
    /// that themselves lost frames, and recoverers that died after
    /// fencing a proposal (the proposal is still pending, so the scan
    /// simply fires again).
    fn scan_orphans(&mut self, now: Time, ring: RingId, out: &mut Vec<Action>) {
        self.kick_orphans(now, out, |r, delta_us, _, p| {
            r == ring && now.since(p.since) >= (delta_us * ORPHAN_DELTAS).max(1)
        });
    }

    /// Sequencer side: a recoverer asks what this process holds for the
    /// orphaned round `id` in `group`. Answer from the authoritative
    /// maps; stay silent when this process does not (or no longer)
    /// sequence the group — the recoverer re-routes on
    /// `CoordinatorChange` and re-fires on its orphan timeout.
    fn on_orphan_query(
        &mut self,
        now: Time,
        from: ProcessId,
        group: GroupId,
        id: ValueId,
        attempt: u32,
        out: &mut Vec<Action>,
    ) {
        let Some(seq) = self.led.get_mut(&group) else {
            return;
        };
        let state = if let Some(&fts) = seq.done.get(&id) {
            if seq.outq.contains_key(&(fts, id)) {
                // Decided but gated behind earlier keys: still only in
                // this sequencer's memory, so not yet confirmable.
                OrphanSt::Decided(fts)
            } else {
                OrphanSt::Released(fts)
            }
        } else if let Some(p) = seq.pending.get_mut(&id) {
            // Answering hands the round to recovery: from here only an
            // OrphanFinal decides this proposal (see `Proposal::fenced`).
            p.fenced = true;
            OrphanSt::Proposed(p.ts)
        } else {
            OrphanSt::Unknown
        };
        self.route(
            now,
            from,
            WbMessage::OrphanState {
                group,
                id,
                attempt,
                state,
            },
            out,
        );
    }

    /// Recoverer side: collects one state per addressed group. Once the
    /// collection is complete, either every group holds the value —
    /// then the round is finished exactly as the initiator would have
    /// (decided timestamp wins, else max over proposals) — or some
    /// group never saw the `Submit`: re-submit the orphan's value there
    /// (receiver-side dedup makes duplicates harmless) and re-query it
    /// over the same FIFO channel, so the refreshed state arrives right
    /// behind the new proposal.
    fn on_orphan_state(
        &mut self,
        now: Time,
        group: GroupId,
        id: ValueId,
        attempt: u32,
        state: OrphanSt,
        out: &mut Vec<Action>,
    ) {
        enum Next {
            /// Every addressed group confirmed the value in its
            /// released stream (never lost from there): recovery
            /// retires.
            Confirmed,
            /// Some groups never saw the `Submit`: re-seed them, then
            /// re-collect.
            Reseed(Vec<GroupId>),
            /// Every group holds the value: (re-)send the decision to
            /// the not-yet-released ones and await confirmation.
            Decide(u64, Vec<GroupId>),
        }
        {
            let Some(round) = self.orphans.get_mut(&id) else {
                return;
            };
            if attempt != round.attempt || !round.groups.contains(&group) {
                return;
            }
            round.states.insert(group, state);
            if round.states.len() < round.groups.len() {
                return;
            }
        }
        // The collection is complete: classify it into the next step,
        // shedding all Unknown states *before* routing anything — a
        // re-submit to a self-led group is handled inline and can
        // re-enter this function, so the map must already be consistent
        // by then.
        let (next, value, gamma, attempt) = {
            let round = self.orphans.get_mut(&id).expect("checked above");
            // The round's timestamp is immutable once first computed:
            // re-proposals minted for an empty-handed replacement
            // sequencer must never move an already-decided round, so
            // the recorded value (or any group's reported decision —
            // every decision of this round carries the same one,
            // first-decide-wins at each sequencer) beats any maximum
            // over fresh proposals.
            let decided = round.decided.or_else(|| {
                round.states.values().find_map(|s| match s {
                    OrphanSt::Decided(ts) | OrphanSt::Released(ts) => Some(*ts),
                    _ => None,
                })
            });
            let unknown: Vec<GroupId> = round
                .states
                .iter()
                .filter(|(_, s)| matches!(s, OrphanSt::Unknown))
                .map(|(&g, _)| g)
                .collect();
            for g in &unknown {
                round.states.remove(g);
            }
            let next = if !unknown.is_empty() {
                Next::Reseed(unknown)
            } else if round
                .states
                .values()
                .all(|s| matches!(s, OrphanSt::Released(_)))
            {
                Next::Confirmed
            } else {
                let fts = decided.unwrap_or_else(|| {
                    round
                        .states
                        .values()
                        .map(|s| match s {
                            OrphanSt::Proposed(ts)
                            | OrphanSt::Decided(ts)
                            | OrphanSt::Released(ts) => *ts,
                            OrphanSt::Unknown => 0,
                        })
                        .max()
                        .expect("non-empty states")
                });
                let unreleased: Vec<GroupId> = round
                    .states
                    .iter()
                    .filter(|(_, s)| !matches!(s, OrphanSt::Released(_)))
                    .map(|(&g, _)| g)
                    .collect();
                // Record the decision and keep the round: a
                // fire-and-forget OrphanFinal could die with an
                // addressed sequencer that crashed right after
                // answering, losing the round in that group forever
                // while the others deliver. The Δ-paced re-probe
                // re-drives the decision until every group confirms
                // release.
                round.decided = Some(fts);
                round.since = now;
                Next::Decide(fts, unreleased)
            };
            (
                next,
                round.value.clone(),
                round.groups.clone(),
                round.attempt,
            )
        };
        match next {
            Next::Confirmed => {
                self.orphans.remove(&id);
                self.orphans_completed += 1;
                self.tel.incr("orphan.rounds_completed", 1);
                self.tel.trace(now, "orphan.confirmed", None, id.seq);
            }
            Next::Reseed(groups) => {
                for g in groups {
                    let Some(sequencer) = self.sequencer_of(g) else {
                        continue;
                    };
                    self.route(
                        now,
                        sequencer,
                        WbMessage::Submit {
                            group: g,
                            groups: gamma.clone(),
                            value: value.clone(),
                        },
                        out,
                    );
                    self.route(
                        now,
                        sequencer,
                        WbMessage::OrphanQuery {
                            group: g,
                            id,
                            attempt,
                        },
                        out,
                    );
                }
            }
            Next::Decide(fts, groups) => {
                for g in groups {
                    let Some(sequencer) = self.sequencer_of(g) else {
                        continue;
                    };
                    self.route(
                        now,
                        sequencer,
                        WbMessage::OrphanFinal {
                            group: g,
                            id,
                            ts: fts,
                        },
                        out,
                    );
                }
            }
        }
    }

    /// Re-probes outstanding orphan rounds that have gone an orphan
    /// timeout without progress: a fresh attempt re-queries every
    /// addressed group, so a decision frame lost with a crashed
    /// sequencer is re-driven (re-submission included) until every
    /// group confirms release.
    fn reprobe_orphan_rounds(&mut self, now: Time, delta_us: u64, out: &mut Vec<Action>) {
        let timeout = (delta_us * ORPHAN_DELTAS).max(1);
        let stale: Vec<(ValueId, Value, Vec<GroupId>)> = self
            .orphans
            .iter()
            .filter(|(_, r)| now.since(r.since) >= timeout)
            .map(|(&id, r)| (id, r.value.clone(), r.groups.clone()))
            .collect();
        for (id, value, gamma) in stale {
            self.start_orphan_recovery(now, id, value, gamma, out);
        }
    }

    /// The coordination service reported the current down-set of
    /// `ring`'s members. Two consumers: the checkpoint prune floor
    /// drops crashed subscribers (a permanent death no longer freezes
    /// sequencer `history`/`done` growth), and pending multi-group
    /// proposals whose initiator is among the dead are recovered
    /// immediately instead of waiting out the orphan timeout.
    fn on_membership_change(
        &mut self,
        now: Time,
        ring: RingId,
        down: Vec<ProcessId>,
        out: &mut Vec<Action>,
    ) {
        let Some(ringcfg) = self.config.ring(ring) else {
            return;
        };
        let down_set: BTreeSet<ProcessId> = down
            .into_iter()
            .filter(|p| ringcfg.members().iter().any(|m| m.process == *p))
            .collect();
        self.down.insert(ring, down_set.clone());
        let down_now = self.down_union();
        for seq in self.led.values_mut() {
            seq.prune_below_collective_mark(&down_now);
        }
        self.recover_orphans_of(now, &down_set, out);
    }

    /// Processes the coordination service currently reports crashed in
    /// *any* ring (per-ring down-sets never overwrite each other's
    /// verdicts about a shared member; erring toward "down" only
    /// advances a prune floor, and a wrongly-pruned-past subscriber is
    /// still answered with an explicit truncation, never a silent gap).
    fn down_union(&self) -> BTreeSet<ProcessId> {
        self.down.values().flatten().copied().collect()
    }

    /// Releases the settled prefix of a led group's stream: decided
    /// values strictly below every undecided proposal, fanned out to the
    /// subscribers in increasing `(ts, id)` order. The frame is encoded
    /// once and shared across subscribers (`Message` clones are cheap:
    /// the payload is a reference-counted `Bytes`).
    fn flush_group(&mut self, now: Time, group: GroupId, out: &mut Vec<Action>) {
        let me = self.me;
        loop {
            let released = {
                let Some(seq) = self.led.get_mut(&group) else {
                    return;
                };
                // Takeover recovery window: hold the stream so values
                // re-injected by initiators (at their already-decided,
                // possibly small timestamps) sort in before release.
                if seq.resume_at.is_some_and(|t| now < t) {
                    return;
                }
                let Some((&key, _)) = seq.outq.first_key_value() else {
                    return;
                };
                if seq.undecided_bound().is_some_and(|bound| key > bound) {
                    return;
                }
                let (value, groups) = seq.outq.remove(&key).expect("head key present");
                // Future assignments must key above everything released.
                seq.next_ts = seq.next_ts.max(key.0 + 1);
                // Retain the released value for subscriber resyncs; the
                // clones are cheap (`Bytes` payload) and the entry is
                // pruned once every subscriber's durable checkpoint
                // covers it — or, while some subscriber has never
                // checkpointed, bounded by the cap (best-effort resync
                // beats unbounded memory in never-checkpointing
                // deployments).
                seq.history.insert(key, (value.clone(), groups.clone()));
                let mut evictions = 0u64;
                if seq.history.len() > UNREPORTED_HISTORY_CAP {
                    // The union is built only on this rare over-cap
                    // path (never-checkpointing deployments), keeping
                    // the per-release fast path allocation-free.
                    let down: BTreeSet<ProcessId> = self.down.values().flatten().copied().collect();
                    if !seq.all_reported(&down) {
                        if let Some(((ts, _), _)) = seq.history.pop_first() {
                            // The retained stream's floor moved: a
                            // resync from below it can no longer be
                            // served prefix-complete, and must say so.
                            seq.evicted = seq.evicted.max(ts);
                            evictions = 1;
                        }
                    }
                }
                let frame = WbMessage::Ordered {
                    group,
                    epoch: seq.epoch,
                    ts: key.0,
                    groups: groups.clone(),
                    value: value.clone(),
                }
                .into_frame();
                let mut local = false;
                for &to in &seq.subscribers {
                    if to == me {
                        local = true;
                    } else {
                        out.push(Action::Send {
                            to,
                            msg: frame.clone(),
                        });
                    }
                }
                (key.0, seq.epoch, groups, value, local, evictions)
            };
            let (ts, epoch, groups, value, local, evictions) = released;
            self.tel.incr("seq.released", 1);
            if evictions > 0 {
                self.tel.incr("seq.history_evictions", evictions);
            }
            // Release confirmation: the value is now in the group's
            // stream and can no longer be lost with this sequencer.
            self.route(
                now,
                value.id.proposer,
                WbMessage::FinalAck {
                    group,
                    id: value.id,
                    ts,
                },
                out,
            );
            if local {
                self.on_ordered(now, group, epoch, ts, groups, value, out);
            }
        }
    }

    /// Lamport receive rule over every sequencer this process hosts:
    /// any timestamp observed from another group drags the local
    /// clocks past it (see [`Sequencer::observe`]).
    fn observe_ts(&mut self, from_group: GroupId, ts: u64) {
        for (&g, seq) in &mut self.led {
            if g != from_group {
                seq.observe(ts);
            }
        }
    }

    /// Subscriber side: buffers and drains in global `(ts, id)` order.
    /// A multi-group value arrives once per subscribed addressed group;
    /// only the copy in the smallest such group enters the delivery
    /// buffer — the others advance their stream's frontier, which is
    /// exactly what the delivery condition waits for.
    #[allow(clippy::too_many_arguments)]
    fn on_ordered(
        &mut self,
        now: Time,
        group: GroupId,
        epoch: u32,
        ts: u64,
        groups: Vec<GroupId>,
        value: Value,
        out: &mut Vec<Action>,
    ) {
        self.note_observed(group, ts);
        self.note_epoch(group, epoch);
        self.observe_ts(group, ts);
        let delivery_group = groups
            .iter()
            .copied()
            .filter(|g| self.subs.contains_key(g))
            .min();
        let duplicate = self.delivered_ids.contains_key(&value.id);
        let Some(sub) = self.subs.get_mut(&group) else {
            return;
        };
        if epoch < sub.epoch {
            // A deposed sequencer's frame arriving after the new
            // stream anchored; its releases were re-run by initiators.
            self.tel.incr("sub.fenced_frames", 1);
            return;
        }
        sub.epoch = epoch;
        let key = (ts, value.id);
        sub.frontier = sub.frontier.max(key);
        // Values at or below the checkpoint floor are already reflected
        // in the restored snapshot: a resync replay (or stale
        // re-release) of them only advances the frontier.
        if delivery_group == Some(group) && !duplicate && ts > sub.floor {
            sub.pending.insert(key, value);
        }
        self.drain(now, out);
    }

    fn on_heartbeat(
        &mut self,
        now: Time,
        group: GroupId,
        epoch: u32,
        ts: u64,
        out: &mut Vec<Action>,
    ) {
        self.note_observed(group, ts);
        self.note_epoch(group, epoch);
        self.observe_ts(group, ts);
        let Some(sub) = self.subs.get_mut(&group) else {
            return;
        };
        if epoch < sub.epoch {
            self.tel.incr("sub.fenced_frames", 1);
            return;
        }
        // Re-anchor: the first heartbeat of a higher epoch adopts the
        // new sequencer's stream (the frontier itself only ever grows).
        sub.epoch = epoch;
        let key = promise_key(ts);
        if key <= sub.frontier {
            return;
        }
        sub.frontier = key;
        self.drain(now, out);
    }

    /// Delivers every buffered value whose `(ts, id)` key can no longer
    /// be preceded: every other subscribed group's frontier must have
    /// reached the key (streams arrive in strictly increasing key order,
    /// so nothing smaller can still arrive from a group at or past it).
    fn drain(&mut self, now: Time, out: &mut Vec<Action>) {
        // While any stream is being resynced, its frontier may stand
        // past keys the replay has not retransmitted yet, so no frontier
        // comparison is conclusive: hold all deliveries until every
        // outstanding replay has terminated.
        if self.subs.values().any(|s| s.resyncing) {
            return;
        }
        loop {
            let mut best: Option<(Key, GroupId)> = None;
            for (&g, s) in &self.subs {
                if let Some((&key, _)) = s.pending.first_key_value() {
                    if best.is_none_or(|b| (key, g) < b) {
                        best = Some((key, g));
                    }
                }
            }
            let Some((key, g)) = best else { break };
            let releasable = self
                .subs
                .iter()
                .all(|(&g2, s2)| g2 == g || s2.frontier >= key);
            if !releasable {
                break;
            }
            let value = self
                .subs
                .get_mut(&g)
                .expect("candidate group is subscribed")
                .pending
                .remove(&key)
                .expect("candidate key is pending");
            if self.delivered_ids.contains_key(&value.id) {
                // A failover re-release of a value this process already
                // delivered (or also holds at its original key): the
                // insert-time check only covers ids delivered *before*
                // the copy arrived, so dedup again at delivery time.
                self.tel.incr("sub.dedup_drops", 1);
                continue;
            }
            self.delivered += 1;
            self.tel.incr("sub.delivered", 1);
            self.delivered_ids.insert(value.id, key.0);
            if let Some(entry) = self.inflight.get_mut(&value.id) {
                entry.delivered = true;
                let submitted_at = entry.submitted_at;
                // The initiator's submit→deliver time for its own
                // values: the paper's end-to-end multicast latency.
                self.tel
                    .record("round.delivery_latency_us", now.since(submitted_at));
                if entry.released.len() == entry.groups.len() {
                    self.inflight.remove(&value.id);
                }
            }
            out.push(Action::Deliver {
                group: g,
                instance: InstanceId::new(key.0),
                value,
            });
        }
    }

    /// Sequencer side: a subscriber restarted from a checkpoint whose
    /// delivery mark for this group is `from_ts` — replay the retained
    /// released stream above it (in key order; the per-channel FIFO
    /// guarantee then keeps subsequent live releases behind the replay)
    /// and re-anchor the requester's frontier with the current promise.
    fn on_resync(
        &mut self,
        now: Time,
        from: ProcessId,
        group: GroupId,
        from_ts: u64,
        out: &mut Vec<Action>,
    ) {
        let Some(seq) = self.led.get(&group) else {
            // Not this group's sequencer (anymore): the restarted
            // subscriber re-anchors to whatever the current sequencer
            // streams; values only the deposed incarnation held are
            // re-run by their initiators' retries.
            return;
        };
        let mut frames: Vec<Message> = seq
            .history
            .range((
                std::ops::Bound::Excluded(promise_key(from_ts)),
                std::ops::Bound::Unbounded,
            ))
            .map(|(&(ts, _), (value, groups))| {
                WbMessage::Ordered {
                    group,
                    epoch: seq.epoch,
                    ts,
                    groups: groups.clone(),
                    value: value.clone(),
                }
                .into_frame()
            })
            .collect();
        // The replay terminator: releases the requester's delivery hold
        // and republishes the current promise over the same channel, so
        // its frontier is prefix-complete from here on. When the
        // request starts below the retained history's floor (capped
        // eviction, checkpoint pruning past a dead subscriber), the
        // replay is truncated and the terminator says so — the
        // requester must re-anchor past the hole, not claim a complete
        // prefix it never received.
        let gap_to = if from_ts < seq.evicted {
            seq.evicted
        } else {
            0
        };
        frames.push(
            WbMessage::ResyncDone {
                group,
                epoch: seq.epoch,
                ts: seq.promised,
                gap_to,
            }
            .into_frame(),
        );
        self.tel.incr("seq.resync_replays", 1);
        self.tel
            .incr("seq.resync_frames_replayed", frames.len() as u64 - 1);
        self.tel.trace(now, "resync.replay", Some(group), from_ts);
        if from == self.me {
            // A sequencer that also subscribes resyncs against itself
            // (only meaningful when its own state survived, i.e. never
            // after a real crash — then history is empty anyway).
            for frame in frames {
                self.dispatch_message(now, self.me, frame, out);
            }
        } else {
            out.extend(frames.into_iter().map(|msg| Action::Send { to: from, msg }));
        }
    }

    /// Subscriber side: the replay for `group` has fully arrived — the
    /// stream's frontier is prefix-complete again, deliveries may
    /// proceed (once no other stream is still resyncing). A nonzero
    /// `gap_to` means the sequencer could not serve the requested
    /// prefix (its retained history starts above it): rather than
    /// deliver around a silent hole, the stream **re-anchors at the
    /// gap's end** — everything at or below `gap_to` is written off,
    /// buffered stragglers from inside the hole are discarded, and the
    /// truncation is surfaced in [`WbcastNode::resync_truncations`] so
    /// the deployment can fail loudly (e.g. re-seed from a peer
    /// checkpoint) instead of proceeding on a gapped history.
    fn on_resync_done(
        &mut self,
        now: Time,
        group: GroupId,
        epoch: u32,
        ts: u64,
        gap_to: u64,
        out: &mut Vec<Action>,
    ) {
        self.note_observed(group, ts);
        self.note_epoch(group, epoch);
        self.observe_ts(group, ts);
        let Some(sub) = self.subs.get_mut(&group) else {
            return;
        };
        if epoch < sub.epoch {
            // Answered by a deposed sequencer; the CoordinatorChange
            // that deposed it re-issued the resync to its successor.
            return;
        }
        sub.epoch = epoch;
        if gap_to > sub.floor {
            self.resync_truncations += 1;
            self.tel.incr("sub.resync_truncations", 1);
            self.tel.trace(now, "resync.truncated", Some(group), gap_to);
            sub.floor = gap_to;
            sub.pending.retain(|&(ts, _), _| ts > gap_to);
            // The frontier anchor below (ts.max(sub.floor)) covers the
            // raised floor.
        }
        sub.resyncing = false;
        self.tel.trace(now, "resync.done", Some(group), ts);
        sub.frontier = sub.frontier.max(promise_key(ts.max(sub.floor)));
        self.drain(now, out);
    }

    /// Sequencer side: a subscriber's durable checkpoint covers `group`
    /// up to `ts`. Once every live subscriber has reported, protocol
    /// state below the minimum mark is unreachable — no retry can
    /// resurrect it (initiators stop at `FinalAck`) and no live
    /// subscriber resyncs below its own durable checkpoint — so the
    /// decided-id map and the released history are pruned to the
    /// un-checkpointed window. Subscribers the coordination service
    /// reports crashed are dropped from the minimum (their last mark
    /// would otherwise freeze the floor forever); if one revives, its
    /// below-floor resync is answered with an explicit truncation.
    fn on_ckpt_mark(&mut self, from: ProcessId, group: GroupId, ts: u64) {
        let down = self.down_union();
        let Some(seq) = self.led.get_mut(&group) else {
            return;
        };
        let mark = seq.reported.entry(from).or_insert(0);
        *mark = (*mark).max(ts);
        seq.prune_below_collective_mark(&down);
        self.tel.incr("seq.ckpt_marks", 1);
    }

    fn on_wb_message(&mut self, now: Time, from: ProcessId, msg: WbMessage, out: &mut Vec<Action>) {
        match msg {
            WbMessage::Submit {
                group,
                groups,
                value,
            } => self.on_submit(now, group, groups, value, out),
            WbMessage::ProposeAck { group, id, ts } => {
                self.on_propose_ack(now, group, id, ts, out);
            }
            WbMessage::Final { group, id, ts } => self.on_final(now, group, id, ts, false, out),
            WbMessage::FinalAck { group, id, ts } => self.on_final_ack(now, group, id, ts),
            WbMessage::Ordered {
                group,
                epoch,
                ts,
                groups,
                value,
            } => self.on_ordered(now, group, epoch, ts, groups, value, out),
            WbMessage::Heartbeat { group, epoch, ts } => {
                self.on_heartbeat(now, group, epoch, ts, out);
            }
            WbMessage::Resync { group, from_ts } => self.on_resync(now, from, group, from_ts, out),
            WbMessage::CkptMark { group, ts } => self.on_ckpt_mark(from, group, ts),
            WbMessage::ResyncDone {
                group,
                epoch,
                ts,
                gap_to,
            } => {
                self.on_resync_done(now, group, epoch, ts, gap_to, out);
            }
            WbMessage::OrphanQuery { group, id, attempt } => {
                self.on_orphan_query(now, from, group, id, attempt, out);
            }
            WbMessage::OrphanState {
                group,
                id,
                attempt,
                state,
            } => self.on_orphan_state(now, group, id, attempt, state, out),
            WbMessage::OrphanFinal { group, id, ts } => {
                self.on_final(now, group, id, ts, true, out);
            }
        }
    }

    /// Handles a client request arriving at this proposer, mirroring
    /// the ring engine: the command is framed with its client session
    /// so any subscriber can answer.
    fn on_request(
        &mut self,
        now: Time,
        client: ClientId,
        request: u64,
        groups: &[GroupId],
        payload: Bytes,
        out: &mut Vec<Action>,
    ) {
        let framed = encode_command(client, request, &payload);
        if let Ok((_, actions)) = AmcastEngine::multicast(self, now, groups, framed) {
            out.extend(actions);
        }
        // Not a proposer / unknown group: drop; the client retries
        // against a correct proposer (same policy as the ring engine).
    }

    fn dispatch_message(
        &mut self,
        now: Time,
        from: ProcessId,
        msg: Message,
        out: &mut Vec<Action>,
    ) {
        match msg {
            Message::Engine { engine, payload } if engine == WBCAST_WIRE_ID => {
                if let Some(wb) = WbMessage::parse(payload) {
                    self.on_wb_message(now, from, wb, out);
                }
            }
            Message::Batch(msgs) => {
                for m in msgs {
                    self.dispatch_message(now, from, m, out);
                }
            }
            Message::Request {
                client,
                request,
                groups,
                payload,
            } => self.on_request(now, client, request, &groups, payload, out),
            // Ring traffic, trim/checkpoint protocol and foreign engine
            // frames do not concern this engine.
            _ => {}
        }
    }

    /// Emits fresh heartbeat promises for the led groups of `ring`
    /// (skipping groups still inside their takeover recovery window,
    /// whose windows end lazily here).
    fn emit_heartbeats(&mut self, now: Time, ring: RingId, out: &mut Vec<Action>) {
        let groups: Vec<GroupId> = self
            .led
            .iter()
            .filter(|(_, s)| s.ring == ring)
            .map(|(&g, _)| g)
            .collect();
        let me = self.me;
        for group in groups {
            let (promise, epoch, heartbeat_locally) = {
                let seq = self.led.get_mut(&group).expect("led group");
                if seq.resume_at.is_some_and(|t| now < t) {
                    continue;
                }
                seq.resume_at = None;
                seq.bump_clock(now);
                let promise = seq.safe_promise();
                if promise <= seq.promised {
                    continue;
                }
                seq.promised = promise;
                let frame = WbMessage::Heartbeat {
                    group,
                    epoch: seq.epoch,
                    ts: promise,
                }
                .into_frame();
                let mut heartbeat_locally = false;
                for &to in &seq.subscribers {
                    if to == me {
                        heartbeat_locally = true;
                    } else {
                        out.push(Action::Send {
                            to,
                            msg: frame.clone(),
                        });
                    }
                }
                (promise, seq.epoch, heartbeat_locally)
            };
            if heartbeat_locally {
                self.on_heartbeat(now, group, epoch, promise, out);
            }
        }
    }

    fn heartbeat_tick(&mut self, now: Time, ring: RingId, out: &mut Vec<Action>) {
        let groups: Vec<GroupId> = self
            .led
            .iter()
            .filter(|(_, s)| s.ring == ring)
            .map(|(&g, _)| g)
            .collect();
        if groups.is_empty() {
            // Resigned between arming and firing: let the timer lapse.
            self.delta_armed.remove(&ring);
            return;
        }
        let delta_us = self.led[&groups[0]].delta_us;
        // Release anything a just-ended recovery window was holding
        // before promising past it.
        for &g in &groups {
            self.flush_group(now, g, out);
        }
        // Initiator liveness backstop: proposals whose initiator went
        // silent are recovered, and outstanding recovery rounds that
        // stopped making progress (a decision frame died with a crashed
        // sequencer) are re-driven, before the next promise round (the
        // promise is capped by pending proposals anyway).
        self.scan_orphans(now, ring, out);
        self.reprobe_orphan_rounds(now, delta_us, out);
        self.emit_heartbeats(now, ring, out);
        // Exactly one re-arm per ring, regardless of how many led
        // groups share it: runtimes do not dedupe timers, so one
        // SetTimer per group would multiply live timers every Δ.
        out.push(Action::SetTimer {
            after_us: delta_us.max(1),
            timer: TimerKind::Delta(ring),
        });
    }

    /// Re-runs the unconfirmed parts of in-flight submissions routed to
    /// `ring`: a `Submit` probe to the current sequencer of every
    /// addressed group that has neither confirmed release nor holds a
    /// live proposal. Receiver-side dedup makes probes idempotent.
    fn retry_ring(&mut self, now: Time, ring: RingId, out: &mut Vec<Action>) {
        self.retry_armed.remove(&ring);
        let mut probes: Vec<(GroupId, Vec<GroupId>, Value)> = Vec::new();
        let mut unconfirmed = false;
        for entry in self.inflight.values() {
            for &g in &entry.groups {
                if self.config.ring_of_group(g) != Some(ring) || entry.released.contains(&g) {
                    continue;
                }
                unconfirmed = true;
                // A live proposal needs no probe: the Final settles it,
                // or a CoordinatorChange voids the ack and re-probes.
                if entry.final_ts.is_none() && entry.acks.contains_key(&g) {
                    continue;
                }
                probes.push((g, entry.groups.clone(), entry.value.clone()));
            }
        }
        for (g, groups, value) in probes {
            if let Some(sequencer) = self.sequencer_of(g) {
                self.tel.incr("round.retry_probes", 1);
                self.route(
                    now,
                    sequencer,
                    WbMessage::Submit {
                        group: g,
                        groups,
                        value,
                    },
                    out,
                );
            }
        }
        if unconfirmed && self.retry_armed.insert(ring) {
            out.push(Action::SetTimer {
                after_us: self.retry_interval(ring),
                timer: TimerKind::ProposalResend(ring),
            });
        }
    }

    /// The coordination service designated `coordinator` for `ring`:
    /// sequencer handover. The named process adopts every group of the
    /// ring at a safe resume point; everyone else drops any sequencer
    /// state it held for them, voids acks obtained from the previous
    /// sequencer, and re-runs its interrupted rounds.
    fn on_coordinator_change(
        &mut self,
        now: Time,
        ring: RingId,
        coordinator: ProcessId,
        supersedes: Ballot,
        out: &mut Vec<Action>,
    ) {
        // The election round is the authoritative epoch floor: two
        // successive coordinators that never observed each other's
        // frames would otherwise mint colliding epochs.
        self.note_ring_epoch(ring, supersedes.round());
        let deposed = self
            .coordinators
            .insert(ring, coordinator)
            .filter(|&old| old != coordinator);
        let groups: Vec<GroupId> = self
            .config
            .groups()
            .iter()
            .filter(|&(_, &r)| r == ring)
            .map(|(&g, _)| g)
            .collect();
        if groups.is_empty() {
            return;
        }
        if coordinator == self.me {
            let fresh: Vec<GroupId> = groups
                .iter()
                .copied()
                .filter(|g| !self.led.contains_key(g))
                .collect();
            if !fresh.is_empty() {
                let Some(ringcfg) = self.config.ring(ring) else {
                    return;
                };
                let delta_us = ringcfg.tuning().delta_us;
                let epoch = self.ring_epochs.get(&ring).copied().unwrap_or(0) + 1;
                self.ring_epochs.insert(ring, epoch);
                let resume_at = now.plus((delta_us * TAKEOVER_GRACE_DELTAS).max(1));
                for g in fresh {
                    // Resume past everything the previous sequencer is
                    // known to have exposed, and past the hybrid-clock
                    // floor (which covers unobserved assignments as
                    // long as the election outlasts count-driven skew).
                    let mut seq = Sequencer {
                        ring,
                        delta_us,
                        epoch,
                        next_ts: self.observed.get(&g).copied().unwrap_or(0) + 1,
                        promised: 0,
                        resume_at: Some(resume_at),
                        subscribers: self.config.subscribers_of(g),
                        pending: BTreeMap::new(),
                        outq: BTreeMap::new(),
                        done: BTreeMap::new(),
                        // A fresh sequencer has no released history to
                        // serve: subscribers that crash while this
                        // incarnation leads can only resync values it
                        // released itself (replicating the history
                        // inside the group is future work, with the
                        // per-group counter replication).
                        history: BTreeMap::new(),
                        evicted: 0,
                        reported: BTreeMap::new(),
                    };
                    seq.bump_clock(now);
                    self.led.insert(g, seq);
                    self.takeovers += 1;
                    self.tel.incr("seq.takeovers", 1);
                    self.tel
                        .trace(now, "seq.takeover", Some(g), u64::from(epoch));
                }
                if self.delta_armed.insert(ring) {
                    out.push(Action::SetTimer {
                        after_us: delta_us.max(1),
                        timer: TimerKind::Delta(ring),
                    });
                }
            }
        } else {
            for &g in &groups {
                if let Some(seq) = self.led.remove(&g) {
                    // Fold the resigned clock into the observation
                    // record so a later re-takeover resumes above
                    // everything this incarnation assigned or promised.
                    let top = seq.next_ts.saturating_sub(1).max(seq.promised);
                    self.note_observed(g, top);
                    // Undelivered pending/outq state is dropped: the
                    // initiators' retries re-run those rounds against
                    // the new sequencer.
                    self.tel.incr("seq.resignations", 1);
                    self.tel
                        .trace(now, "seq.resign", Some(g), u64::from(seq.epoch));
                }
            }
        }
        // Subscriber side: an unanswered resync addressed to the
        // deposed sequencer would hold deliveries forever — re-issue it
        // to the new one (which answers from whatever history it has,
        // then terminates the hold).
        let resyncs: Vec<(GroupId, u64)> = groups
            .iter()
            .filter_map(|&g| {
                self.subs
                    .get(&g)
                    .filter(|s| s.resyncing)
                    .map(|s| (g, s.floor))
            })
            .collect();
        for (g, from_ts) in resyncs {
            self.route(
                now,
                coordinator,
                WbMessage::Resync { group: g, from_ts },
                out,
            );
        }
        // Initiator side: acknowledgements from the deposed sequencer
        // are void. Re-run each affected round against the new one
        // immediately (and keep the retry timer as backstop).
        let mut probes: Vec<(GroupId, Vec<GroupId>, Value)> = Vec::new();
        for entry in self.inflight.values_mut() {
            for &g in &groups {
                if !entry.groups.contains(&g) {
                    continue;
                }
                entry.released.remove(&g);
                if entry.final_ts.is_none() {
                    entry.acks.remove(&g);
                }
                probes.push((g, entry.groups.clone(), entry.value.clone()));
            }
        }
        let any = !probes.is_empty();
        for (g, gamma, value) in probes {
            self.route(
                now,
                coordinator,
                WbMessage::Submit {
                    group: g,
                    groups: gamma,
                    value,
                },
                out,
            );
        }
        if any && self.retry_armed.insert(ring) {
            out.push(Action::SetTimer {
                after_us: self.retry_interval(ring),
                timer: TimerKind::ProposalResend(ring),
            });
        }
        // Orphan recovery fast paths. The election usually means the
        // previous coordinator crashed: rounds it *initiated* are
        // recovered immediately wherever this process holds their
        // proposals. And outstanding recovery rounds that address one
        // of this ring's groups re-run with a fresh attempt, so queries
        // stranded at the deposed sequencer re-route to its successor
        // (the attempt bump fences any late answer the deposed one
        // still sends).
        if let Some(old) = deposed {
            let suspects = BTreeSet::from([old]);
            self.recover_orphans_of(now, &suspects, out);
        }
        let stuck: Vec<ValueId> = self
            .orphans
            .iter()
            .filter(|(_, r)| r.groups.iter().any(|g| groups.contains(g)))
            .map(|(&id, _)| id)
            .collect();
        for id in stuck {
            let round = &self.orphans[&id];
            let (value, gamma) = (round.value.clone(), round.groups.clone());
            self.start_orphan_recovery(now, id, value, gamma, out);
        }
    }

    fn on_start(&mut self, out: &mut Vec<Action>) {
        // One Δ timer per distinct ring this process sequences groups
        // of (several groups may share a ring).
        let mut rings: BTreeMap<RingId, u64> = BTreeMap::new();
        for seq in self.led.values() {
            rings.entry(seq.ring).or_insert(seq.delta_us);
        }
        for (ring, delta_us) in rings {
            self.delta_armed.insert(ring);
            out.push(Action::SetTimer {
                after_us: delta_us.max(1),
                timer: TimerKind::Delta(ring),
            });
        }
    }
}

impl StateMachine for WbcastNode {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        match event {
            Event::Start => self.on_start(&mut out),
            Event::Message { from, msg } => self.dispatch_message(now, from, msg, &mut out),
            Event::Timer(TimerKind::Delta(ring)) => self.heartbeat_tick(now, ring, &mut out),
            Event::Timer(TimerKind::ProposalResend(ring)) => self.retry_ring(now, ring, &mut out),
            Event::CoordinatorChange {
                ring,
                coordinator,
                supersedes,
            } => self.on_coordinator_change(now, ring, coordinator, supersedes, &mut out),
            Event::MembershipChange { ring, down } => {
                self.on_membership_change(now, ring, down, &mut out);
            }
            // The engine keeps no stable storage; other timers and
            // persistence completions are ring-engine concerns.
            Event::Timer(_) | Event::PersistDone(_) => {}
        }
        out
    }

    fn process_id(&self) -> ProcessId {
        self.me
    }
}

impl AmcastEngine for WbcastNode {
    fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        if groups.is_empty() {
            return Err(MulticastError::NoDestination);
        }
        let mut gamma = groups.to_vec();
        gamma.sort_unstable();
        gamma.dedup();
        let mut proposer_somewhere = false;
        for &g in &gamma {
            let Some(ring_id) = self.config.ring_of_group(g) else {
                return Err(MulticastError::UnknownGroup(g));
            };
            let ring = self.config.ring(ring_id).expect("validated config");
            proposer_somewhere |= ring.roles_of(self.me).is_proposer();
        }
        if !proposer_somewhere {
            return Err(MulticastError::NotAProposer(gamma[0]));
        }
        self.next_seq += 1;
        let id = ValueId::new(self.me, self.next_seq);
        let value = Value::new(id, gamma[0], payload);
        let local = gamma.iter().any(|g| self.subs.contains_key(g));
        self.tel.incr("round.submitted", 1);
        if gamma.len() > 1 {
            self.tel.incr("round.submitted_multi_group", 1);
        }
        self.inflight.insert(
            id,
            Inflight {
                groups: gamma.clone(),
                value: value.clone(),
                acks: BTreeMap::new(),
                final_ts: None,
                released: BTreeSet::new(),
                local,
                delivered: false,
                submitted_at: now,
            },
        );
        let mut out = Vec::new();
        let mut rings: BTreeSet<RingId> = BTreeSet::new();
        for &g in &gamma {
            rings.extend(self.config.ring_of_group(g));
            let sequencer = self.sequencer_of(g).expect("group has a ring");
            self.route(
                now,
                sequencer,
                WbMessage::Submit {
                    group: g,
                    groups: gamma.clone(),
                    value: value.clone(),
                },
                &mut out,
            );
        }
        // Retransmission backstop until every addressed group confirms
        // release (a fast path may already have confirmed inline).
        if self.inflight.contains_key(&id) {
            for ring in rings {
                if self.retry_armed.insert(ring) {
                    out.push(Action::SetTimer {
                        after_us: self.retry_interval(ring),
                        timer: TimerKind::ProposalResend(ring),
                    });
                }
            }
        }
        Ok((id, out))
    }

    fn engine_name(&self) -> &'static str {
        "wbcast"
    }

    fn state_digest(&self) -> u64 {
        WbcastNode::state_digest(self)
    }

    /// Locally submitted values addressed to at least one subscribed
    /// group that have not yet been delivered locally. Submissions to
    /// entirely foreign groups are tracked (and retried) until every
    /// addressed group confirms release, but are not counted here: no
    /// local delivery ever confirms them.
    fn backlog(&self) -> usize {
        self.inflight
            .values()
            .filter(|e| e.local && !e.delivered)
            .count()
    }

    /// Per subscribed group, the stream's delivery mark — the largest
    /// timestamp whose whole prefix has been delivered locally; the
    /// merge-cursor fields are unused by this engine.
    fn watermark(&self) -> crate::engine::Watermark {
        crate::engine::Watermark {
            marks: self
                .subs
                .iter()
                .map(|(&g, s)| (g, InstanceId::new(s.delivery_mark())))
                .collect(),
            cursor_group: 0,
            cursor_used: 0,
        }
    }

    /// The engine's recovery records: the local [`ValueId`] sequence
    /// floor, plus every delivered id above the watermark with its
    /// delivery timestamp. The dedup records are needed because marks
    /// are plain timestamps while delivery keys are `(ts, id)` — at a
    /// tie on the boundary timestamp, some ids are already executed and
    /// some are not, and only the id set makes the restore exact. The
    /// sequence floor keeps post-restart submissions from minting ids a
    /// previous incarnation already used (which the restored dedup
    /// records would silently swallow).
    fn checkpoint_state(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.next_seq);
        buf.put_u64_le(self.delivered_ids.len() as u64);
        for (&id, &ts) in &self.delivered_ids {
            put_id(&mut buf, id);
            buf.put_u64_le(ts);
        }
        buf.freeze()
    }

    fn install_checkpoint(&mut self, watermark: &crate::engine::Watermark, state: &Bytes) {
        let mut buf = state.clone();
        if buf.remaining() >= 16 {
            self.next_seq = self.next_seq.max(buf.get_u64_le());
            let n = buf.get_u64_le();
            for _ in 0..n {
                let Some(id) = get_id(&mut buf) else { break };
                if buf.remaining() < 8 {
                    break;
                }
                let ts = buf.get_u64_le();
                self.delivered_ids.insert(id, ts);
            }
        }
        for (&g, sub) in &mut self.subs {
            let floor = sub.floor.max(watermark.mark_of(g).value());
            sub.floor = floor;
            // Nothing at or below the floor will be replayed (resync
            // starts above it), so the frontier can anchor there.
            sub.frontier = sub.frontier.max(promise_key(floor));
            sub.pending.retain(|&(ts, _), _| ts > floor);
        }
    }

    /// Prunes the local dedup records below the durable watermark and
    /// reports the per-group marks to the groups' sequencers
    /// (`CkptMark` frames) so they can prune their decided-id maps and
    /// released-value history in turn.
    fn trim(&mut self, now: Time, watermark: &crate::engine::Watermark) -> Vec<Action> {
        let mut out = Vec::new();
        let mut min_mark = u64::MAX;
        let mut reports: Vec<(GroupId, u64)> = Vec::new();
        for (&g, sub) in &mut self.subs {
            let mark = watermark.mark_of(g).value();
            sub.floor = sub.floor.max(mark);
            min_mark = min_mark.min(mark);
            reports.push((g, mark));
        }
        if min_mark != u64::MAX {
            self.delivered_ids.retain(|_, ts| *ts > min_mark);
        }
        for (g, ts) in reports {
            if let Some(sequencer) = self.sequencer_of(g) {
                self.route(
                    now,
                    sequencer,
                    WbMessage::CkptMark { group: g, ts },
                    &mut out,
                );
            }
        }
        out
    }

    /// Asks each subscribed group's sequencer to replay its released
    /// stream above the restored checkpoint floor. Also floors the local
    /// [`ValueId`] sequence at the restart's wall-clock microsecond so
    /// ids minted by this incarnation cannot collide with submissions
    /// the previous incarnation made *after* its last checkpoint (the
    /// same elapsed-time argument the hybrid clock rests on).
    fn resume(&mut self, now: Time) -> Vec<Action> {
        self.next_seq = self.next_seq.max(now.as_micros());
        let mut out = Vec::new();
        let requests: Vec<(GroupId, u64)> = self.subs.iter().map(|(&g, s)| (g, s.floor)).collect();
        for (g, from_ts) in requests {
            if let Some(sequencer) = self.sequencer_of(g) {
                // Hold deliveries until this stream's replay terminates
                // (a self-routed resync clears the flag inline).
                self.subs.get_mut(&g).expect("subscribed group").resyncing = true;
                self.route(
                    now,
                    sequencer,
                    WbMessage::Resync { group: g, from_ts },
                    &mut out,
                );
            }
        }
        out
    }

    /// The registry's counters and histograms, the trace ring, plus
    /// gauges computed from live state: initiator backlog and dedup
    /// footprint, sequencer queue depths and checkpoint prune-floor lag,
    /// subscriber buffer depth and resync holds (see the module docs'
    /// metric table).
    fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap =
            TelemetrySnapshot::from_telemetry(AmcastEngine::engine_name(self), &self.tel);
        snap.gauges
            .insert("backlog".into(), AmcastEngine::backlog(self) as u64);
        snap.gauges
            .insert("inflight".into(), self.inflight.len() as u64);
        snap.gauges
            .insert("dedup_records".into(), self.delivered_ids.len() as u64);
        snap.gauges
            .insert("orphan.rounds_open".into(), self.orphans.len() as u64);
        snap.gauges
            .insert("seq.groups_led".into(), self.led.len() as u64);
        let mut history = 0u64;
        let mut undecided = 0u64;
        let mut outq = 0u64;
        let mut prune_lag = 0u64;
        let mut max_epoch = 0u32;
        for seq in self.led.values() {
            history += seq.history.len() as u64;
            undecided += seq.pending.len() as u64;
            outq += seq.outq.len() as u64;
            if let Some((&(ts, _), _)) = seq.history.last_key_value() {
                prune_lag = prune_lag.max(ts.saturating_sub(seq.evicted));
            }
            max_epoch = max_epoch.max(seq.epoch);
        }
        snap.gauges.insert("seq.history_retained".into(), history);
        snap.gauges.insert("seq.undecided".into(), undecided);
        snap.gauges.insert("seq.outq_depth".into(), outq);
        snap.gauges.insert("seq.prune_floor_lag".into(), prune_lag);
        let mut pending = 0u64;
        let mut resyncing = 0u64;
        for sub in self.subs.values() {
            pending += sub.pending.len() as u64;
            resyncing += u64::from(sub.resyncing);
            max_epoch = max_epoch.max(sub.epoch);
        }
        snap.gauges.insert("sub.pending_depth".into(), pending);
        snap.gauges
            .insert("sub.resyncing_streams".into(), resyncing);
        snap.gauges.insert("max_epoch".into(), u64::from(max_epoch));
        snap
    }

    /// Flags, against `now`:
    ///
    /// * `"stalled_round"` — a locally submitted round unsettled for
    ///   longer than [`STALL_DELTAS`] heartbeat intervals of the slowest
    ///   ring (detail: µs waited);
    /// * `"frozen_prune_floor"` — a led group retaining more than
    ///   [`UNREPORTED_HISTORY_CAP`] released values even though every
    ///   live subscriber has reported a mark, i.e. some reported mark
    ///   stopped advancing (detail: retained entries);
    /// * `"held_deliveries"` — a subscribed stream holding deliveries
    ///   behind an outstanding resync (detail: buffered values).
    fn health(&self, now: Time) -> HealthReport {
        let mut report = HealthReport::healthy(now);
        let delta_us = self
            .config
            .rings()
            .values()
            .map(|r| r.tuning().delta_us)
            .max()
            .unwrap_or(1)
            .max(1);
        let threshold = STALL_DELTAS * delta_us;
        for entry in self.inflight.values() {
            let settled =
                entry.released.len() == entry.groups.len() && (!entry.local || entry.delivered);
            let waited = now.since(entry.submitted_at);
            if !settled && waited > threshold {
                report.issues.push(HealthIssue {
                    code: "stalled_round",
                    group: entry.groups.first().copied(),
                    detail: waited,
                });
            }
        }
        for (&g, seq) in &self.led {
            if seq.history.len() > UNREPORTED_HISTORY_CAP {
                report.issues.push(HealthIssue {
                    code: "frozen_prune_floor",
                    group: Some(g),
                    detail: seq.history.len() as u64,
                });
            }
        }
        for (&g, sub) in &self.subs {
            if sub.resyncing {
                report.issues.push(HealthIssue {
                    code: "held_deliveries",
                    group: Some(g),
                    detail: sub.pending.len() as u64,
                });
            }
        }
        report
    }

    fn recovery_counters(&self) -> RecoveryCounters {
        RecoveryCounters {
            resync_truncations: self.resync_truncations,
            orphan_rounds_started: self.orphans_started,
            orphan_rounds_completed: self.orphans_completed,
            sequencer_takeovers: self.takeovers,
            backfill_rounds: 0,
            checkpoint_installs: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::config::{single_ring, RingSpec, RingTuning, Roles};
    use std::collections::BTreeMap as Map;

    /// Executes all Send actions at zero latency (in-order), collecting
    /// deliveries per process and counting received engine frames that
    /// reference a value (for genuineness assertions).
    struct Pumped {
        delivered: Map<ProcessId, Vec<(GroupId, u64, ValueId)>>,
        value_frames_at: Map<ProcessId, u64>,
    }

    fn pump(nodes: &mut Map<ProcessId, WbcastNode>, queue: Vec<(ProcessId, Action)>) -> Pumped {
        pump_at(nodes, queue, Time::ZERO, true)
    }

    /// Like [`pump`], but frames to processes missing from `nodes` are
    /// dropped (they crashed) instead of flagging a harness mistake.
    fn pump_lossy(
        nodes: &mut Map<ProcessId, WbcastNode>,
        queue: Vec<(ProcessId, Action)>,
        now: Time,
    ) -> Pumped {
        pump_at(nodes, queue, now, false)
    }

    fn pump_at(
        nodes: &mut Map<ProcessId, WbcastNode>,
        queue: Vec<(ProcessId, Action)>,
        now: Time,
        strict: bool,
    ) -> Pumped {
        // FIFO processing: the Action::Send contract promises reliable
        // in-order channels, and the engine's stream frontiers build on
        // exactly that promise.
        let mut queue: std::collections::VecDeque<(ProcessId, Action)> = queue.into();
        let mut result = Pumped {
            delivered: Map::new(),
            value_frames_at: Map::new(),
        };
        let mut steps = 0;
        while let Some((origin, action)) = queue.pop_front() {
            steps += 1;
            assert!(steps < 100_000, "no quiescence");
            match action {
                Action::Send { to, msg } => {
                    let Some(node) = nodes.get_mut(&to) else {
                        assert!(!strict, "send to unknown process {to}");
                        continue; // crashed process: the frame is lost
                    };
                    if let Message::Engine { payload, .. } = &msg {
                        if frame_references_value(payload.clone()) {
                            *result.value_frames_at.entry(to).or_default() += 1;
                        }
                    }
                    for a in node.on_event(now, Event::Message { from: origin, msg }) {
                        queue.push_back((to, a));
                    }
                }
                Action::Deliver {
                    group,
                    instance,
                    value,
                } => result.delivered.entry(origin).or_default().push((
                    group,
                    instance.value(),
                    value.id,
                )),
                _ => {}
            }
        }
        result
    }

    /// `n_groups` groups; group `g` is served by a dedicated ring whose
    /// members (and subscribers) are `processes[g]`.
    fn disjoint_config(members: &[&[u32]]) -> ClusterConfig {
        let mut b = ClusterConfig::builder();
        for (g, ps) in members.iter().enumerate() {
            let mut spec = RingSpec::new(RingId::new(g as u16));
            for &p in *ps {
                spec = spec.member(ProcessId::new(p), Roles::ALL);
            }
            b = b
                .ring(spec)
                .group(GroupId::new(g as u16), RingId::new(g as u16));
            for &p in *ps {
                b = b.subscribe(ProcessId::new(p), GroupId::new(g as u16));
            }
        }
        b.build().expect("disjoint config")
    }

    fn spawn(config: &ClusterConfig) -> Map<ProcessId, WbcastNode> {
        config
            .processes()
            .into_iter()
            .map(|p| (p, WbcastNode::new(p, config.clone())))
            .collect()
    }

    #[test]
    fn single_group_delivers_in_submission_order_everywhere() {
        let config = single_ring(3, RingTuning::default());
        let mut nodes = spawn(&config);
        let mut queue = Vec::new();
        for proposer in [1u32, 2, 0] {
            let p = ProcessId::new(proposer);
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p).unwrap(),
                Time::ZERO,
                &[GroupId::new(0)],
                Bytes::from(vec![proposer as u8]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p, a)));
        }
        let delivered = pump(&mut nodes, queue).delivered;
        assert_eq!(delivered.len(), 3, "all three subscribers deliver");
        let reference = &delivered[&ProcessId::new(0)];
        assert_eq!(reference.len(), 3);
        for seq in delivered.values() {
            assert_eq!(seq, reference, "identical delivery sequences");
        }
        // Timestamps are dense from 1.
        let ts: Vec<u64> = reference.iter().map(|(_, t, _)| *t).collect();
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    fn multicast_to_unknown_group_fails() {
        let config = single_ring(2, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let err = AmcastEngine::multicast(&mut n, Time::ZERO, &[GroupId::new(7)], Bytes::new())
            .unwrap_err();
        assert_eq!(err, MulticastError::UnknownGroup(GroupId::new(7)));
        let err = AmcastEngine::multicast(&mut n, Time::ZERO, &[], Bytes::new()).unwrap_err();
        assert_eq!(err, MulticastError::NoDestination);
    }

    #[test]
    fn request_is_framed_ordered_and_delivered() {
        let config = single_ring(1, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let out = n.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(9),
                msg: Message::Request {
                    client: ClientId::new(4),
                    request: 1,
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"cmd"),
                },
            },
        );
        // Singleton: submit, order and deliver complete inline.
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Deliver { group, .. } if *group == GroupId::new(0))));
        assert_eq!(n.delivered(), 1);
    }

    #[test]
    fn heartbeats_advance_idle_groups() {
        let config = single_ring(1, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let start = n.on_event(Time::ZERO, Event::Start);
        assert!(start.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                timer: TimerKind::Delta(_),
                ..
            }
        )));
        let out = n.on_event(
            Time::from_millis(50),
            Event::Timer(TimerKind::Delta(RingId::new(0))),
        );
        // Re-armed, and the (self-subscribed) horizon advanced with time.
        assert!(out.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                timer: TimerKind::Delta(_),
                ..
            }
        )));
        assert!(n.horizons()[&GroupId::new(0)] > 0);
    }

    #[test]
    fn observed_timestamps_drag_idle_sequencer_clocks_forward() {
        // Two groups over the same processes; p0 sequences both. A burst
        // into group 0 drives its count-based timestamps far past wall
        // clock; the Lamport receive rule must drag group 1's clock
        // along, so group 1's next heartbeat promise releases the burst
        // instead of capping delivery at the time-based tick rate.
        let mut b = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring));
            for p in 0..2u32 {
                spec = spec.member(ProcessId::new(p), Roles::ALL);
            }
            b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        }
        for p in 0..2u32 {
            for g in 0..2u16 {
                b = b.subscribe(ProcessId::new(p), GroupId::new(g));
            }
        }
        let config = b.build().expect("two-group config");
        let mut nodes = spawn(&config);
        // 40 submissions to group 0 only, all at t=0 (time-based clock
        // floor stays at 1, so timestamps run ahead on counts alone).
        let mut queue = Vec::new();
        let p0 = ProcessId::new(0);
        for i in 0..40u8 {
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p0).unwrap(),
                Time::ZERO,
                &[GroupId::new(0)],
                Bytes::from(vec![i]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p0, a)));
        }
        let delivered = pump(&mut nodes, queue).delivered;
        // One group-1 heartbeat at t=0 must now promise past the burst
        // (clock observed ts=40) and release everything at once.
        let hb = nodes
            .get_mut(&p0)
            .unwrap()
            .on_event(Time::ZERO, Event::Timer(TimerKind::Delta(RingId::new(1))));
        let mut queue: Vec<(ProcessId, Action)> = hb.into_iter().map(|a| (p0, a)).collect();
        queue.retain(|(_, a)| !matches!(a, Action::SetTimer { .. }));
        let late = pump(&mut nodes, queue).delivered;
        let total: usize = [&delivered, &late]
            .iter()
            .flat_map(|d| d.get(&p0))
            .map(std::vec::Vec::len)
            .sum();
        assert_eq!(total, 40, "idle group 1 must not throttle group 0's burst");
    }

    /// Three disjoint two-process groups. A message addressed to groups
    /// {0, 1} must be delivered by exactly their four subscribers, in
    /// one consistent position, and group 2's processes must receive no
    /// frame referencing any value — the genuineness property.
    #[test]
    fn multigroup_is_genuine_and_delivered_by_addressed_groups_only() {
        let config = disjoint_config(&[&[0, 1], &[2, 3], &[4, 5]]);
        let mut nodes = spawn(&config);
        let p0 = ProcessId::new(0);
        // A few single-group messages on each addressed group, plus the
        // multi-group message, all initiated by p0 / p2.
        let mut queue = Vec::new();
        for (proposer, groups) in [
            (0u32, vec![GroupId::new(0)]),
            (2, vec![GroupId::new(1)]),
            (0, vec![GroupId::new(0), GroupId::new(1)]),
            (0, vec![GroupId::new(0)]),
            (2, vec![GroupId::new(1)]),
        ] {
            let p = ProcessId::new(proposer);
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p).unwrap(),
                Time::ZERO,
                &groups,
                Bytes::from(vec![proposer as u8]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p, a)));
        }
        let multi_id = ValueId::new(p0, 2); // p0's second submission
        let result = pump(&mut nodes, queue);

        // Genuineness: the outsiders saw no value traffic at all.
        for outsider in [4u32, 5] {
            let p = ProcessId::new(outsider);
            assert_eq!(
                result.value_frames_at.get(&p).copied().unwrap_or(0),
                0,
                "process {p} is outside γ but received value frames"
            );
            assert!(result.delivered.get(&p).is_none_or(std::vec::Vec::is_empty));
        }

        // Exactly the four subscribers of groups 0 and 1 deliver the
        // multi-group message, exactly once each.
        for p in [0u32, 1, 2, 3] {
            let seq = &result.delivered[&ProcessId::new(p)];
            let copies = seq.iter().filter(|(_, _, id)| *id == multi_id).count();
            assert_eq!(copies, 1, "process {p} must deliver the multicast once");
        }

        // Consistent relative order: every process orders the multi
        // message against its group's singles at the same timestamp
        // position, so the (ts, id) keys must agree across groups.
        let key_of = |p: u32| {
            result.delivered[&ProcessId::new(p)]
                .iter()
                .find(|(_, _, id)| *id == multi_id)
                .map(|(_, ts, id)| (*ts, *id))
                .expect("delivered")
        };
        assert_eq!(key_of(0), key_of(2), "same final timestamp in both groups");
        assert_eq!(key_of(0), key_of(1));
        assert_eq!(key_of(2), key_of(3));
    }

    /// Two groups over overlapping subscribers: everyone subscribed to
    /// both groups must deliver the *interleaved* sequence identically,
    /// with multi-group messages appearing exactly once.
    #[test]
    fn multigroup_interleaves_in_one_total_order_at_shared_subscribers() {
        let mut b = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring));
            for p in 0..3u32 {
                spec = spec.member(ProcessId::new((p + u32::from(ring)) % 3), Roles::ALL);
            }
            b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        }
        for p in 0..3u32 {
            for g in 0..2u16 {
                b = b.subscribe(ProcessId::new(p), GroupId::new(g));
            }
        }
        let config = b.build().expect("overlapping config");
        let mut nodes = spawn(&config);
        let mut queue = Vec::new();
        let mut expected = 0usize;
        for (proposer, groups) in [
            (0u32, vec![GroupId::new(0)]),
            (1, vec![GroupId::new(1)]),
            (2, vec![GroupId::new(0), GroupId::new(1)]),
            (0, vec![GroupId::new(1)]),
            (1, vec![GroupId::new(0), GroupId::new(1)]),
            (2, vec![GroupId::new(0)]),
        ] {
            let p = ProcessId::new(proposer);
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p).unwrap(),
                Time::ZERO,
                &groups,
                Bytes::from(vec![proposer as u8]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p, a)));
            expected += 1;
        }
        let mut delivered = pump(&mut nodes, queue).delivered;
        // One heartbeat round: without it a tail value can legitimately
        // stay buffered, waiting for the other group's idle promise
        // (runtimes re-fire Δ timers; the unit pump must do it once).
        let mut queue = Vec::new();
        for (&p, node) in &mut nodes {
            for ring in 0..2u16 {
                let hb = node.on_event(
                    Time::from_millis(10),
                    Event::Timer(TimerKind::Delta(RingId::new(ring))),
                );
                queue.extend(
                    hb.into_iter()
                        .filter(|a| !matches!(a, Action::SetTimer { .. }))
                        .map(|a| (p, a)),
                );
            }
        }
        for (p, seq) in pump(&mut nodes, queue).delivered {
            delivered.entry(p).or_default().extend(seq);
        }
        let reference = &delivered[&ProcessId::new(0)];
        assert_eq!(reference.len(), expected, "all messages delivered once");
        let unique: BTreeSet<ValueId> = reference.iter().map(|(_, _, id)| *id).collect();
        assert_eq!(unique.len(), expected, "no duplicate deliveries");
        for p in 1..3u32 {
            assert_eq!(
                &delivered[&ProcessId::new(p)],
                reference,
                "identical interleaved sequences at shared subscribers"
            );
        }
    }

    #[test]
    fn backlog_counts_local_submissions_until_delivery() {
        let config = single_ring(3, RingTuning::default());
        let mut nodes = spawn(&config);
        let p1 = ProcessId::new(1);
        // p1 submits but the network has not run yet: one value in
        // flight (p1 subscribes to the group, so delivery will settle
        // it).
        let (_, actions) = AmcastEngine::multicast(
            nodes.get_mut(&p1).unwrap(),
            Time::ZERO,
            &[GroupId::new(0)],
            Bytes::from_static(b"v"),
        )
        .unwrap();
        assert_eq!(AmcastEngine::backlog(nodes.get_mut(&p1).unwrap()), 1);
        let queue = actions.into_iter().map(|a| (p1, a)).collect();
        let delivered = pump(&mut nodes, queue).delivered;
        assert_eq!(delivered[&p1].len(), 1);
        assert_eq!(
            AmcastEngine::backlog(nodes.get_mut(&p1).unwrap()),
            0,
            "delivery settles the backlog"
        );
    }

    #[test]
    fn wire_roundtrip_of_engine_frames() {
        let value = Value::new(
            ValueId::new(ProcessId::new(3), 9),
            GroupId::new(1),
            Bytes::from_static(b"payload"),
        );
        let gamma = vec![GroupId::new(0), GroupId::new(1)];
        for msg in [
            WbMessage::Submit {
                group: GroupId::new(1),
                groups: gamma.clone(),
                value: value.clone(),
            },
            WbMessage::ProposeAck {
                group: GroupId::new(0),
                id: value.id,
                ts: 17,
            },
            WbMessage::Final {
                group: GroupId::new(1),
                id: value.id,
                ts: 18,
            },
            WbMessage::FinalAck {
                group: GroupId::new(1),
                id: value.id,
                ts: 18,
            },
            WbMessage::Ordered {
                group: GroupId::new(1),
                epoch: 3,
                ts: 42,
                groups: gamma,
                value,
            },
            WbMessage::Heartbeat {
                group: GroupId::new(0),
                epoch: 2,
                ts: 7,
            },
            WbMessage::Resync {
                group: GroupId::new(1),
                from_ts: 12,
            },
            WbMessage::CkptMark {
                group: GroupId::new(0),
                ts: 11,
            },
            WbMessage::ResyncDone {
                group: GroupId::new(1),
                epoch: 4,
                ts: 13,
                gap_to: 6,
            },
            WbMessage::OrphanQuery {
                group: GroupId::new(1),
                id: ValueId::new(ProcessId::new(3), 9),
                attempt: 2,
            },
            WbMessage::OrphanState {
                group: GroupId::new(1),
                id: ValueId::new(ProcessId::new(3), 9),
                attempt: 2,
                state: OrphanSt::Proposed(21),
            },
            WbMessage::OrphanState {
                group: GroupId::new(0),
                id: ValueId::new(ProcessId::new(3), 9),
                attempt: 3,
                state: OrphanSt::Unknown,
            },
            WbMessage::OrphanState {
                group: GroupId::new(0),
                id: ValueId::new(ProcessId::new(3), 9),
                attempt: 3,
                state: OrphanSt::Decided(23),
            },
            WbMessage::OrphanState {
                group: GroupId::new(1),
                id: ValueId::new(ProcessId::new(3), 9),
                attempt: 4,
                state: OrphanSt::Released(23),
            },
            WbMessage::OrphanFinal {
                group: GroupId::new(1),
                id: ValueId::new(ProcessId::new(3), 9),
                ts: 23,
            },
        ] {
            let Message::Engine { engine, payload } = msg.clone().into_frame() else {
                panic!("expected engine frame");
            };
            assert_eq!(engine, WBCAST_WIRE_ID);
            let carries = !matches!(
                msg,
                WbMessage::Heartbeat { .. }
                    | WbMessage::Resync { .. }
                    | WbMessage::CkptMark { .. }
                    | WbMessage::ResyncDone { .. }
            );
            assert_eq!(frame_references_value(payload.clone()), carries);
            assert_eq!(WbMessage::parse(payload), Some(msg));
        }
        assert_eq!(WbMessage::parse(Bytes::from_static(b"")), None);
        assert_eq!(WbMessage::parse(Bytes::from_static(&[9, 0, 0])), None);
    }

    /// Satellite regression: a submission that reaches a dead (or
    /// stale) sequencer must not leak in `backlog()` forever. After the
    /// coordination service hands the ring to this process, its own
    /// retransmission self-routes, the value is ordered by the new
    /// sequencer and delivered locally, and the backlog drains to zero.
    #[test]
    fn backlog_settles_after_sequencer_failover() {
        let config = disjoint_config(&[&[0, 1]]);
        let mut n1 = WbcastNode::new(ProcessId::new(1), config);
        let (_, actions) = AmcastEngine::multicast(
            &mut n1,
            Time::ZERO,
            &[GroupId::new(0)],
            Bytes::from_static(b"v"),
        )
        .unwrap();
        // The Submit went to p0, which crashed: drop everything.
        assert!(actions
            .iter()
            .any(|a| a.send_to() == Some(ProcessId::new(0))));
        assert_eq!(AmcastEngine::backlog(&n1), 1);
        // Election: p1 becomes the coordinator. The takeover retransmits
        // inline, but the fresh sequencer holds its stream for the
        // recovery window, so the value is not yet delivered.
        let out = n1.on_event(
            Time::from_millis(100),
            Event::CoordinatorChange {
                ring: RingId::new(0),
                coordinator: ProcessId::new(1),
                supersedes: multiring_paxos::types::Ballot::ZERO,
            },
        );
        assert_eq!(AmcastEngine::backlog(&n1), 1, "held by the grace window");
        assert!(!out.iter().any(|a| matches!(a, Action::Deliver { .. })));
        // First Δ tick past the window releases, delivers locally and
        // settles the backlog.
        let out = n1.on_event(
            Time::from_secs(2),
            Event::Timer(TimerKind::Delta(RingId::new(0))),
        );
        assert!(out.iter().any(|a| matches!(a, Action::Deliver { .. })));
        assert_eq!(AmcastEngine::backlog(&n1), 0, "failover settles the leak");
        assert_eq!(n1.delivered(), 1);
    }

    /// Satellite regression: a stray or duplicated `ProposeAck` for a
    /// group outside the value's γ must not enter the collection — it
    /// could otherwise complete the round with a bogus maximum.
    #[test]
    fn stray_propose_ack_from_foreign_group_is_ignored() {
        let config = disjoint_config(&[&[0, 1], &[2, 3], &[4, 5]]);
        let mut n0 = WbcastNode::new(ProcessId::new(0), config);
        let (id, _) = AmcastEngine::multicast(
            &mut n0,
            Time::ZERO,
            &[GroupId::new(0), GroupId::new(1)],
            Bytes::from_static(b"m"),
        )
        .unwrap();
        // g0's sequencer is n0 itself, so one genuine ack is already
        // collected. A stray ack for non-addressed g2 must be ignored…
        let stray = WbMessage::ProposeAck {
            group: GroupId::new(2),
            id,
            ts: 999,
        }
        .into_frame();
        let out = n0.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(4),
                msg: stray,
            },
        );
        let finals = |actions: &[Action]| {
            actions
                .iter()
                .filter_map(|a| match a {
                    Action::Send {
                        msg: Message::Engine { payload, .. },
                        ..
                    } => match WbMessage::parse(payload.clone()) {
                        Some(WbMessage::Final { ts, .. }) => Some(ts),
                        _ => None,
                    },
                    _ => None,
                })
                .collect::<Vec<u64>>()
        };
        assert!(
            finals(&out).is_empty(),
            "stray ack must not close the round"
        );
        // …while the genuine g1 ack completes it with the true maximum.
        let genuine = WbMessage::ProposeAck {
            group: GroupId::new(1),
            id,
            ts: 5,
        }
        .into_frame();
        let out = n0.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(2),
                msg: genuine,
            },
        );
        assert_eq!(finals(&out), vec![5], "final is max(1, 5), not 999");
    }

    /// A retransmitted `Submit` must not get a second timestamp, and a
    /// duplicate `Final` is idempotent.
    #[test]
    fn retransmissions_deduplicate_at_the_sequencer() {
        let config = disjoint_config(&[&[0, 1], &[2, 3]]);
        let mut n2 = WbcastNode::new(ProcessId::new(2), config);
        let value = Value::new(
            ValueId::new(ProcessId::new(0), 1),
            GroupId::new(0),
            Bytes::from_static(b"m"),
        );
        let submit = WbMessage::Submit {
            group: GroupId::new(1),
            groups: vec![GroupId::new(0), GroupId::new(1)],
            value,
        }
        .into_frame();
        let ack_ts = |actions: &[Action]| {
            actions.iter().find_map(|a| match a {
                Action::Send {
                    msg: Message::Engine { payload, .. },
                    ..
                } => match WbMessage::parse(payload.clone()) {
                    Some(WbMessage::ProposeAck { ts, .. }) => Some(ts),
                    _ => None,
                },
                _ => None,
            })
        };
        let from0 = ProcessId::new(0);
        let ev = |msg: Message| Event::Message { from: from0, msg };
        let first = n2.on_event(Time::ZERO, ev(submit.clone()));
        let ts1 = ack_ts(&first).expect("proposal acknowledged");
        let clock_after = n2.led[&GroupId::new(1)].next_ts;
        let dup = n2.on_event(Time::ZERO, ev(submit));
        assert_eq!(ack_ts(&dup), Some(ts1), "same proposal re-acknowledged");
        assert_eq!(
            n2.led[&GroupId::new(1)].next_ts,
            clock_after,
            "no second timestamp assigned"
        );
        let fin = WbMessage::Final {
            group: GroupId::new(1),
            id: ValueId::new(from0, 1),
            ts: ts1 + 3,
        }
        .into_frame();
        let released = n2.on_event(Time::ZERO, ev(fin.clone()));
        let ordered = |actions: &[Action]| {
            actions
                .iter()
                .filter(|a| match a {
                    Action::Send {
                        msg: Message::Engine { payload, .. },
                        ..
                    } => matches!(
                        WbMessage::parse(payload.clone()),
                        Some(WbMessage::Ordered { .. })
                    ),
                    _ => false,
                })
                .count()
        };
        assert!(ordered(&released) > 0, "final releases the value");
        let dup_fin = n2.on_event(Time::ZERO, ev(fin));
        assert_eq!(ordered(&dup_fin), 0, "duplicate final re-releases nothing");
        assert!(
            dup_fin.iter().any(|a| match a {
                Action::Send {
                    to,
                    msg: Message::Engine { payload, .. },
                } => {
                    *to == from0
                        && matches!(
                            WbMessage::parse(payload.clone()),
                            Some(WbMessage::FinalAck { .. })
                        )
                }
                _ => false,
            }),
            "duplicate final is re-acknowledged idempotently"
        );
    }

    /// A value that is still *pending* (not yet deliverable) at a
    /// subscriber when a failover re-release of the same value arrives
    /// at a different key must be delivered exactly once: the dedup
    /// cannot rely on the delivered-id set alone, because neither copy
    /// has been delivered when the second one is buffered.
    #[test]
    fn failover_rerelease_of_pending_value_delivers_once() {
        // Two groups over the same two processes; p0 sequences both,
        // p1 is a pure subscriber of both.
        let mut b = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring));
            for p in 0..2u32 {
                spec = spec.member(ProcessId::new(p), Roles::ALL);
            }
            b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        }
        for p in 0..2u32 {
            for g in 0..2u16 {
                b = b.subscribe(ProcessId::new(p), GroupId::new(g));
            }
        }
        let config = b.build().expect("two-group config");
        let mut n1 = WbcastNode::new(ProcessId::new(1), config);
        let value = Value::new(
            ValueId::new(ProcessId::new(0), 1),
            GroupId::new(0),
            Bytes::from_static(b"v"),
        );
        let ev = |msg: WbMessage| Event::Message {
            from: ProcessId::new(0),
            msg: msg.into_frame(),
        };
        let mut deliveries = 0usize;
        // Original release: parks in pending (group 1's frontier is 0).
        let out = n1.on_event(
            Time::ZERO,
            ev(WbMessage::Ordered {
                group: GroupId::new(0),
                epoch: 0,
                ts: 41,
                groups: vec![GroupId::new(0)],
                value: value.clone(),
            }),
        );
        deliveries += out
            .iter()
            .filter(|a| matches!(a, Action::Deliver { .. }))
            .count();
        // Failover re-release of the same value at a fresh timestamp.
        let out = n1.on_event(
            Time::ZERO,
            ev(WbMessage::Ordered {
                group: GroupId::new(0),
                epoch: 1,
                ts: 50_000,
                groups: vec![GroupId::new(0)],
                value: value.clone(),
            }),
        );
        deliveries += out
            .iter()
            .filter(|a| matches!(a, Action::Deliver { .. }))
            .count();
        // Group 1's promise unblocks everything buffered.
        let out = n1.on_event(
            Time::ZERO,
            ev(WbMessage::Heartbeat {
                group: GroupId::new(1),
                epoch: 0,
                ts: 60_000,
            }),
        );
        deliveries += out
            .iter()
            .filter(|a| matches!(a, Action::Deliver { .. }))
            .count();
        assert_eq!(deliveries, 1, "both copies pending must dedup to one");
        assert_eq!(n1.delivered(), 1);
    }

    /// The coordination service's election round (the `supersedes`
    /// ballot) is the authoritative epoch floor: a new coordinator that
    /// never observed the previous incarnation's frames must still mint
    /// a strictly greater epoch.
    #[test]
    fn takeover_epoch_supersedes_election_round() {
        let config = disjoint_config(&[&[0, 1]]);
        let mut n1 = WbcastNode::new(ProcessId::new(1), config);
        n1.on_event(
            Time::ZERO,
            Event::CoordinatorChange {
                ring: RingId::new(0),
                coordinator: ProcessId::new(1),
                supersedes: multiring_paxos::types::Ballot::new(4, ProcessId::new(0)),
            },
        );
        assert_eq!(
            n1.led[&GroupId::new(0)].epoch,
            5,
            "epoch must exceed the election round even with no frames observed"
        );
    }

    /// Satellite regression: the per-key dedup/bookkeeping state —
    /// subscriber-side delivered-id records, sequencer-side decided-id
    /// map and released history — is bounded by the checkpoint window,
    /// not by total delivered history (the unbounded-growth bug the
    /// checkpoint/trim surface fixes).
    #[test]
    fn checkpoint_trim_bounds_dedup_and_sequencer_state() {
        let config = single_ring(1, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let submit_round = |n: &mut WbcastNode, base: u8| {
            for i in 0..100u8 {
                AmcastEngine::multicast(
                    n,
                    Time::ZERO,
                    &[GroupId::new(0)],
                    Bytes::from(vec![base, i]),
                )
                .unwrap();
            }
        };
        submit_round(&mut n, 0);
        assert_eq!(n.delivered(), 100);
        assert_eq!(n.dedup_len(), 100, "one dedup record per delivery");
        assert_eq!(n.sequencer_footprint(), (100, 100));
        // One checkpoint cycle: report the watermark, trim below it.
        let w = AmcastEngine::watermark(&n);
        let mark = w.mark_of(GroupId::new(0)).value();
        assert!(mark >= 99, "watermark tracks the delivered prefix: {mark}");
        let actions = AmcastEngine::trim(&mut n, Time::ZERO, &w);
        assert!(actions.is_empty(), "singleton: the mark self-routes");
        assert_eq!(
            n.dedup_retained_at_or_below(mark),
            0,
            "no dedup record survives at or below the watermark"
        );
        // Only the boundary value (excluded from the mark because a
        // future release could share its timestamp) may remain.
        assert!(n.dedup_len() <= 1, "dedup bounded: {}", n.dedup_len());
        let (done, history) = n.sequencer_footprint();
        assert!(
            done <= 1 && history <= 1,
            "sequencer bookkeeping bounded: {done}/{history}"
        );
        // A second window: sizes stay at the window bound, proving the
        // state scales with the checkpoint interval, not uptime.
        submit_round(&mut n, 1);
        let w = AmcastEngine::watermark(&n);
        AmcastEngine::trim(&mut n, Time::ZERO, &w);
        assert!(n.dedup_len() <= 1);
        let (done, history) = n.sequencer_footprint();
        assert!(done <= 1 && history <= 1);
        assert_eq!(n.delivered(), 200, "trimming never affects delivery");
    }

    /// A subscriber that restarts from a checkpoint resyncs the released
    /// stream above its watermark from the sequencer's retained history:
    /// nothing covered by the checkpoint (or by the residual dedup
    /// records above the boundary) is delivered twice, and new traffic
    /// reaches the restarted process exactly once.
    #[test]
    fn restarted_subscriber_resyncs_from_checkpoint() {
        let config = single_ring(3, RingTuning::default());
        let mut nodes = spawn(&config);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let submit = |nodes: &mut Map<ProcessId, WbcastNode>, k: u8| {
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p0).unwrap(),
                Time::ZERO,
                &[GroupId::new(0)],
                Bytes::from(vec![k]),
            )
            .unwrap();
            pump(nodes, actions.into_iter().map(|a| (p0, a)).collect());
        };
        for k in 0..5 {
            submit(&mut nodes, k);
        }
        assert_eq!(nodes[&p1].delivered(), 5);
        // p1 checkpoints (watermark + engine recovery state), then
        // crashes: the process state is rebuilt from scratch.
        let w = AmcastEngine::watermark(&nodes[&p1]);
        let state = AmcastEngine::checkpoint_state(&nodes[&p1]);
        assert_eq!(
            w.mark_of(GroupId::new(0)).value(),
            4,
            "the boundary value stays above the mark (a future release could tie its timestamp)"
        );
        let mut fresh = WbcastNode::recovering(p1, config.clone());
        AmcastEngine::install_checkpoint(&mut fresh, &w, &state);
        nodes.insert(p1, fresh);
        // Restart: resync replays the history above the mark — the
        // boundary value arrives again but is deduplicated against the
        // restored residual records.
        let actions = AmcastEngine::resume(nodes.get_mut(&p1).unwrap(), Time::ZERO);
        assert!(!actions.is_empty(), "a resync request is issued");
        pump(&mut nodes, actions.into_iter().map(|a| (p1, a)).collect());
        assert_eq!(
            nodes[&p1].delivered(),
            0,
            "everything before the crash is covered by checkpoint + dedup"
        );
        // New traffic is delivered exactly once and the restarted
        // subscriber's stream position matches the others'.
        for k in 5..8 {
            submit(&mut nodes, k);
        }
        assert_eq!(nodes[&p1].delivered(), 3);
        assert_eq!(
            nodes[&p1].horizons()[&GroupId::new(0)],
            nodes[&p0].horizons()[&GroupId::new(0)],
            "frontier re-anchored to the live stream"
        );
    }

    /// Review regression: while a resync is outstanding, the delivery
    /// watermark must stay at the restored checkpoint floor — live
    /// heartbeats advance the frontier past values only the pending
    /// replay can supply, and a checkpoint taken at that frontier would
    /// claim (and, after trim, permanently drop) values the
    /// application never executed.
    #[test]
    fn watermark_holds_at_floor_while_resyncing() {
        let config = single_ring(3, RingTuning::default());
        let p1 = ProcessId::new(1);
        let g = GroupId::new(0);
        let mut fresh = WbcastNode::recovering(p1, config);
        let restored = crate::engine::Watermark {
            marks: vec![(g, InstanceId::new(4))],
            cursor_group: 0,
            cursor_used: 0,
        };
        AmcastEngine::install_checkpoint(&mut fresh, &restored, &Bytes::new());
        let resume = AmcastEngine::resume(&mut fresh, Time::from_secs(1));
        assert!(!resume.is_empty(), "resync issued to the sequencer");
        // A live heartbeat with a far-future promise arrives before the
        // replay: the frontier moves, the watermark must not.
        fresh.on_event(
            Time::from_secs(1),
            Event::Message {
                from: ProcessId::new(0),
                msg: WbMessage::Heartbeat {
                    group: g,
                    epoch: 0,
                    ts: 10_000,
                }
                .into_frame(),
            },
        );
        assert_eq!(
            AmcastEngine::watermark(&fresh).mark_of(g).value(),
            4,
            "watermark pinned to the restored floor while resyncing"
        );
        // The replay terminator restores the frontier's meaning and
        // with it the watermark.
        fresh.on_event(
            Time::from_secs(1),
            Event::Message {
                from: ProcessId::new(0),
                msg: WbMessage::ResyncDone {
                    group: g,
                    epoch: 0,
                    ts: 9_000,
                    gap_to: 0,
                }
                .into_frame(),
            },
        );
        assert!(
            AmcastEngine::watermark(&fresh).mark_of(g).value() >= 9_000,
            "watermark tracks the live stream again after ResyncDone"
        );
    }

    /// Review regression: a restarted process that *statically*
    /// coordinates a group it subscribes to must not answer its own
    /// resync from its freshly empty history — that would clear the
    /// delivery hold and permanently skip everything a replacement
    /// sequencer released while it was down. A recovering node
    /// relinquishes the role until the coordination service speaks; the
    /// `CoordinatorChange` then re-routes the still-outstanding resync
    /// to the actual sequencer.
    #[test]
    fn restarted_configured_sequencer_resyncs_from_replacement() {
        let config = disjoint_config(&[&[0, 1]]);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let g = GroupId::new(0);
        let ring = RingId::new(0);
        let mut nodes = spawn(&config);
        // Three values ordered by the configured sequencer p0.
        let mut queue = Vec::new();
        for k in 0..3u8 {
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p0).unwrap(),
                Time::ZERO,
                &[g],
                Bytes::from(vec![k]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p0, a)));
        }
        pump(&mut nodes, queue);
        assert_eq!(nodes[&p0].delivered(), 3);
        // p0 checkpoints, then crashes. p1 is elected sequencer and
        // orders two more values; frames toward the dead p0 are lost.
        let w = AmcastEngine::watermark(&nodes[&p0]);
        let state = AmcastEngine::checkpoint_state(&nodes[&p0]);
        nodes.remove(&p0);
        let election = Event::CoordinatorChange {
            ring,
            coordinator: p1,
            supersedes: multiring_paxos::types::Ballot::new(1, p1),
        };
        let drive =
            |nodes: &mut Map<ProcessId, WbcastNode>, from: ProcessId, t: Time, ev: Event| {
                let mut queue: std::collections::VecDeque<(ProcessId, Action)> = nodes
                    .get_mut(&from)
                    .unwrap()
                    .on_event(t, ev)
                    .into_iter()
                    .map(|a| (from, a))
                    .collect();
                while let Some((origin, action)) = queue.pop_front() {
                    if let Action::Send { to, msg } = action {
                        let Some(node) = nodes.get_mut(&to) else {
                            continue; // p0 is down: the frame is lost
                        };
                        for a in node.on_event(t, Event::Message { from: origin, msg }) {
                            queue.push_back((to, a));
                        }
                    }
                }
            };
        drive(&mut nodes, p1, Time::from_millis(100), election.clone());
        for k in 3..5u8 {
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p1).unwrap(),
                Time::from_millis(100),
                &[g],
                Bytes::from(vec![k]),
            )
            .unwrap();
            for (from, a) in actions.into_iter().map(|a| (p1, a)) {
                if let Action::Send { to, msg } = a {
                    if nodes.contains_key(&to) {
                        nodes
                            .get_mut(&to)
                            .unwrap()
                            .on_event(Time::from_millis(100), Event::Message { from, msg });
                    }
                }
            }
        }
        // Past the takeover grace window, p1's Δ tick releases both.
        drive(
            &mut nodes,
            p1,
            Time::from_millis(900),
            Event::Timer(TimerKind::Delta(ring)),
        );
        assert_eq!(nodes[&p1].delivered(), 5);
        // p0 restarts from its checkpoint. Its resume self-routes the
        // resync (the static config names itself), but a recovering
        // node holds no sequencer role: the request stays outstanding
        // and nothing is delivered.
        let mut fresh = WbcastNode::recovering(p0, config.clone());
        AmcastEngine::install_checkpoint(&mut fresh, &w, &state);
        nodes.insert(p0, fresh);
        let resume_actions = AmcastEngine::resume(nodes.get_mut(&p0).unwrap(), Time::from_secs(1));
        assert!(
            resume_actions.is_empty(),
            "the self-addressed resync is swallowed, not answered from an empty history"
        );
        assert_eq!(nodes[&p0].delivered(), 0);
        // The coordination service announces the actual sequencer: the
        // still-outstanding resync is re-issued to p1, whose history
        // replays exactly the two values released during the downtime.
        drive(&mut nodes, p0, Time::from_secs(2), election);
        assert_eq!(
            nodes[&p0].delivered(),
            2,
            "the downtime gap is replayed from the replacement sequencer"
        );
        assert_eq!(
            nodes[&p0].horizons()[&g],
            nodes[&p1].horizons()[&g],
            "frontier re-anchored to the live stream"
        );
    }

    /// A takeover resumes the group clock past every key and promise
    /// the new sequencer observed from the previous one, and stamps a
    /// fresh epoch.
    #[test]
    fn takeover_resumes_above_observed_keys() {
        let config = disjoint_config(&[&[0, 1]]);
        let mut n1 = WbcastNode::new(ProcessId::new(1), config);
        let value = Value::new(
            ValueId::new(ProcessId::new(0), 1),
            GroupId::new(0),
            Bytes::from_static(b"x"),
        );
        let ordered = WbMessage::Ordered {
            group: GroupId::new(0),
            epoch: 0,
            ts: 41,
            groups: vec![GroupId::new(0)],
            value,
        }
        .into_frame();
        n1.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(0),
                msg: ordered,
            },
        );
        n1.on_event(
            Time::ZERO,
            Event::CoordinatorChange {
                ring: RingId::new(0),
                coordinator: ProcessId::new(1),
                supersedes: multiring_paxos::types::Ballot::ZERO,
            },
        );
        let seq = &n1.led[&GroupId::new(0)];
        assert!(seq.next_ts > 41, "clock resumed past the observed key");
        assert_eq!(seq.epoch, 1, "fresh sequencer epoch");
        assert!(seq.resume_at.is_some(), "recovery window armed");
    }

    /// The tentpole's core scenario: the initiator of a multi-group
    /// round crashes after its `Submit`s went out but before any
    /// `Final` — previously every addressed group's stream stalled
    /// forever behind the undecided proposal. The orphan timeout makes
    /// the sequencers assume the initiator role: they collect each
    /// other's proposals and complete the round at the max timestamp,
    /// so every surviving subscriber of γ delivers exactly once, at the
    /// identical final key in both groups.
    #[test]
    fn initiator_crash_orphan_recovery_completes_round() {
        let config = disjoint_config(&[&[0, 1], &[2, 3]]);
        let mut nodes = spawn(&config);
        let p1 = ProcessId::new(1);
        let (id, actions) = AmcastEngine::multicast(
            nodes.get_mut(&p1).unwrap(),
            Time::ZERO,
            &[GroupId::new(0), GroupId::new(1)],
            Bytes::from_static(b"orphan"),
        )
        .unwrap();
        // p1 crashes: its state is gone, frames to it are lost.
        nodes.remove(&p1);
        let queue = actions.into_iter().map(|a| (p1, a)).collect();
        pump_lossy(&mut nodes, queue, Time::ZERO);
        for p in [0u32, 2] {
            assert_eq!(
                nodes[&ProcessId::new(p)].undecided_len(),
                1,
                "sequencer {p} holds the orphaned proposal"
            );
        }
        // Past the orphan timeout, group 0's Δ tick starts recovery and
        // the exchange completes the round in both groups.
        let t = Time::from_millis(100);
        let p0 = ProcessId::new(0);
        let ticked = nodes
            .get_mut(&p0)
            .unwrap()
            .on_event(t, Event::Timer(TimerKind::Delta(RingId::new(0))));
        let queue = ticked.into_iter().map(|a| (p0, a)).collect();
        let late = pump_lossy(&mut nodes, queue, t);
        let key_of = |p: u32| {
            late.delivered
                .get(&ProcessId::new(p))
                .into_iter()
                .flatten()
                .filter(|(_, _, i)| *i == id)
                .map(|(_, ts, i)| (*ts, *i))
                .collect::<Vec<_>>()
        };
        for p in [0u32, 2, 3] {
            assert_eq!(
                key_of(p).len(),
                1,
                "survivor {p} delivers the orphan exactly once"
            );
        }
        assert_eq!(
            key_of(0),
            key_of(2),
            "identical final timestamp in both groups"
        );
        for p in [0u32, 2] {
            assert_eq!(
                nodes[&ProcessId::new(p)].undecided_len(),
                0,
                "no residual undecided proposal at sequencer {p}"
            );
        }
        // The round is tracked until every group confirms release: the
        // recoverer's next re-probe past another orphan timeout sees
        // `Released` everywhere and retires it.
        assert_eq!(nodes[&p0].orphans.len(), 1, "awaiting release confirmation");
        let t2 = Time::from_millis(200);
        let ticked = nodes
            .get_mut(&p0)
            .unwrap()
            .on_event(t2, Event::Timer(TimerKind::Delta(RingId::new(0))));
        let queue = ticked.into_iter().map(|a| (p0, a)).collect();
        pump_lossy(&mut nodes, queue, t2);
        assert!(
            nodes[&p0].orphans.is_empty(),
            "round retires once every group confirms release"
        );
    }

    /// Review regression: once a sequencer has answered an
    /// `OrphanQuery` for a pending proposal, a plain `Final` from the
    /// (falsely-suspected) initiator must be dropped — if it could race
    /// the recoverer's `OrphanFinal`, the two deciders could win in
    /// different groups and split the round across two final
    /// timestamps. Only the recovery decision lands.
    #[test]
    fn fenced_proposal_ignores_the_initiators_final_until_recovery_decides() {
        let config = disjoint_config(&[&[0, 1], &[2, 3]]);
        let mut n2 = WbcastNode::new(ProcessId::new(2), config);
        let initiator = ProcessId::new(0);
        let id = ValueId::new(initiator, 1);
        let value = Value::new(id, GroupId::new(0), Bytes::from_static(b"m"));
        let g1 = GroupId::new(1);
        let ev = |from: ProcessId, msg: WbMessage| Event::Message {
            from,
            msg: msg.into_frame(),
        };
        n2.on_event(
            Time::ZERO,
            ev(
                initiator,
                WbMessage::Submit {
                    group: g1,
                    groups: vec![GroupId::new(0), g1],
                    value,
                },
            ),
        );
        let ts = n2.led[&g1].pending[&id].ts;
        // A recoverer (group 0's sequencer) queries: the proposal is
        // now fenced.
        n2.on_event(
            Time::ZERO,
            ev(
                ProcessId::new(0),
                WbMessage::OrphanQuery {
                    group: g1,
                    id,
                    attempt: 1,
                },
            ),
        );
        // The slow initiator's own Final arrives: dropped, the round
        // stays pending.
        let out = n2.on_event(
            Time::ZERO,
            ev(
                initiator,
                WbMessage::Final {
                    group: g1,
                    id,
                    ts: ts + 3,
                },
            ),
        );
        assert!(out.is_empty(), "fenced round ignores the initiator's Final");
        assert_eq!(n2.undecided_len(), 1, "still pending — recovery owns it");
        // The recovery decision lands and releases at ITS timestamp.
        let out = n2.on_event(
            Time::ZERO,
            ev(
                ProcessId::new(0),
                WbMessage::OrphanFinal {
                    group: g1,
                    id,
                    ts: ts + 7,
                },
            ),
        );
        assert_eq!(n2.undecided_len(), 0, "recovery decides the fenced round");
        let released: Vec<u64> = out
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: Message::Engine { payload, .. },
                    ..
                } => match WbMessage::parse(payload.clone()) {
                    Some(WbMessage::Ordered { ts, .. }) => Some(ts),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert!(
            released.contains(&(ts + 7)),
            "released at the recovery timestamp: {released:?}"
        );
        assert!(
            !released.contains(&(ts + 3)),
            "the initiator's racing timestamp never enters the stream"
        );
    }

    /// Review regression (agreement): an `OrphanFinal` that dies with
    /// an addressed sequencer which crashed right after reporting its
    /// proposal must not lose the round in that group while the others
    /// deliver. The recoverer keeps the round until every group
    /// confirms *release*: its re-probe finds the replacement sequencer
    /// empty-handed, re-seeds it, and re-decides at the recorded —
    /// immutable — timestamp, so the late group delivers at exactly the
    /// key the early group already used.
    #[test]
    fn lost_orphan_final_is_redriven_until_every_group_confirms_release() {
        let config = disjoint_config(&[&[0, 1], &[2, 3]]);
        let mut nodes = spawn(&config);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let p2 = ProcessId::new(2);
        let p3 = ProcessId::new(3);
        let g1 = GroupId::new(1);
        let (id, actions) = AmcastEngine::multicast(
            nodes.get_mut(&p1).unwrap(),
            Time::ZERO,
            &[GroupId::new(0), g1],
            Bytes::from_static(b"orphan"),
        )
        .unwrap();
        nodes.remove(&p1); // the initiator dies with the round in flight
        pump_lossy(
            &mut nodes,
            actions.into_iter().map(|a| (p1, a)).collect(),
            Time::ZERO,
        );
        // p0's orphan timeout: step the exchange by hand so p2 can
        // crash at the worst instant — after its OrphanState reply,
        // before the OrphanFinal reaches it.
        let t = Time::from_millis(100);
        let ticked = nodes
            .get_mut(&p0)
            .unwrap()
            .on_event(t, Event::Timer(TimerKind::Delta(RingId::new(0))));
        let to_p2: Vec<Message> = ticked
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } if *to == p2 => Some(msg.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(to_p2.len(), 1, "exactly the OrphanQuery goes to p2");
        let replies = nodes.get_mut(&p2).unwrap().on_event(
            t,
            Event::Message {
                from: p0,
                msg: to_p2[0].clone(),
            },
        );
        // p2 crashes now: its reply survives (already on the wire), the
        // OrphanFinal p0 sends in response dies on the way back.
        nodes.remove(&p2);
        let mut p0_fts = None;
        for a in replies {
            if let Action::Send { to, msg } = a {
                assert_eq!(to, p0);
                let out = nodes
                    .get_mut(&p0)
                    .unwrap()
                    .on_event(t, Event::Message { from: p2, msg });
                for a in out {
                    if let Action::Deliver { instance, .. } = a {
                        p0_fts = Some(instance.value());
                    }
                    // Sends to the dead p2 (the OrphanFinal) are lost.
                }
            }
        }
        let p0_fts = p0_fts.expect("p0 delivered its copy at the decided timestamp");
        assert!(nodes[&p3].delivered() == 0, "group 1 lost the decision");
        // The coordination service elects p3 as group 1's sequencer:
        // p0's stuck-round re-kick finds the replacement empty-handed,
        // re-seeds it, and re-decides at the recorded timestamp.
        let t2 = Time::from_millis(300);
        let election = |coordinator| Event::CoordinatorChange {
            ring: RingId::new(1),
            coordinator,
            supersedes: multiring_paxos::types::Ballot::new(1, p3),
        };
        nodes.get_mut(&p3).unwrap().on_event(t2, election(p3));
        let rekick = nodes.get_mut(&p0).unwrap().on_event(t2, election(p3));
        pump_lossy(
            &mut nodes,
            rekick.into_iter().map(|a| (p0, a)).collect(),
            t2,
        );
        // Past p3's takeover grace window, its Δ tick releases the
        // re-decided value.
        let t3 = Time::from_millis(600);
        let released = nodes
            .get_mut(&p3)
            .unwrap()
            .on_event(t3, Event::Timer(TimerKind::Delta(RingId::new(1))));
        let p3_fts: Vec<u64> = released
            .iter()
            .filter_map(|a| match a {
                Action::Deliver {
                    instance, value, ..
                } if value.id == id => Some(instance.value()),
                _ => None,
            })
            .collect();
        assert_eq!(
            p3_fts,
            vec![p0_fts],
            "the late group delivers exactly once, at the early group's timestamp"
        );
        // The recoverer's next re-probe sees Released everywhere and
        // retires the round.
        let t4 = Time::from_millis(900);
        let probe = nodes
            .get_mut(&p0)
            .unwrap()
            .on_event(t4, Event::Timer(TimerKind::Delta(RingId::new(0))));
        pump_lossy(&mut nodes, probe.into_iter().map(|a| (p0, a)).collect(), t4);
        assert!(nodes[&p0].orphans.is_empty(), "round confirmed and retired");
    }

    /// Recovery when one addressed group never saw the `Submit` (lost
    /// with the crash): the recoverer re-submits on the orphan's behalf
    /// and completes once the fresh proposal is in.
    #[test]
    fn orphan_recovery_resubmits_to_groups_that_never_saw_the_submit() {
        let config = disjoint_config(&[&[0, 1], &[2, 3]]);
        let mut nodes = spawn(&config);
        let p1 = ProcessId::new(1);
        let (id, actions) = AmcastEngine::multicast(
            nodes.get_mut(&p1).unwrap(),
            Time::ZERO,
            &[GroupId::new(0), GroupId::new(1)],
            Bytes::from_static(b"partial"),
        )
        .unwrap();
        nodes.remove(&p1);
        // Only group 0's Submit survives the crash.
        let queue = actions
            .into_iter()
            .filter(|a| a.send_to() == Some(ProcessId::new(0)))
            .map(|a| (p1, a))
            .collect();
        pump_lossy(&mut nodes, queue, Time::ZERO);
        assert_eq!(nodes[&ProcessId::new(0)].undecided_len(), 1);
        assert_eq!(
            nodes[&ProcessId::new(2)].undecided_len(),
            0,
            "group 1 never saw the round"
        );
        let t = Time::from_millis(100);
        let p0 = ProcessId::new(0);
        let ticked = nodes
            .get_mut(&p0)
            .unwrap()
            .on_event(t, Event::Timer(TimerKind::Delta(RingId::new(0))));
        let queue = ticked.into_iter().map(|a| (p0, a)).collect();
        let late = pump_lossy(&mut nodes, queue, t);
        for p in [0u32, 2, 3] {
            let copies = late
                .delivered
                .get(&ProcessId::new(p))
                .into_iter()
                .flatten()
                .filter(|(_, _, i)| *i == id)
                .count();
            assert_eq!(copies, 1, "survivor {p} delivers exactly once");
        }
        for p in [0u32, 2] {
            assert_eq!(nodes[&ProcessId::new(p)].undecided_len(), 0);
        }
    }

    /// Satellite regression (`on_resync` silent gap): a resync from
    /// below the sequencer's retained-history floor — here created by
    /// the [`UNREPORTED_HISTORY_CAP`] eviction — must not replay a
    /// truncated stream behind a terminator that claims
    /// prefix-completeness. The terminator now carries the gap, and the
    /// recovering subscriber re-anchors at the floor and surfaces the
    /// truncation instead of delivering with a silent hole.
    #[test]
    fn below_floor_resync_signals_truncation_and_reanchors() {
        let config = single_ring(2, RingTuning::default());
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let mut nodes = spawn(&config);
        let extra = 10u64;
        let total = UNREPORTED_HISTORY_CAP as u64 + extra;
        // p1 is down the whole time: p0 orders `total` values alone and
        // the cap evicts the oldest `extra` from its history.
        nodes.remove(&p1);
        for i in 0..total {
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p0).unwrap(),
                Time::ZERO,
                &[GroupId::new(0)],
                Bytes::from(i.to_le_bytes().to_vec()),
            )
            .unwrap();
            pump_lossy(
                &mut nodes,
                actions.into_iter().map(|a| (p0, a)).collect(),
                Time::ZERO,
            );
        }
        let (_, history) = nodes[&p0].sequencer_footprint();
        assert_eq!(history, UNREPORTED_HISTORY_CAP, "cap enforced");
        // p1 starts from scratch (no checkpoint) and resyncs from 0 —
        // below the evicted floor.
        let mut fresh = WbcastNode::recovering(p1, config.clone());
        let resume = AmcastEngine::resume(&mut fresh, Time::from_millis(1));
        nodes.insert(p1, fresh);
        let replay = pump_lossy(
            &mut nodes,
            resume.into_iter().map(|a| (p1, a)).collect(),
            Time::from_millis(1),
        );
        let n1 = &nodes[&p1];
        assert_eq!(
            n1.resync_truncations(),
            1,
            "the truncated replay is surfaced, not silent"
        );
        let delivered = replay.delivered.get(&p1).map_or(0, std::vec::Vec::len) as u64;
        assert_eq!(
            delivered,
            total - extra,
            "exactly the retained suffix is delivered"
        );
        // The re-anchor writes the hole off explicitly: the floor sits
        // at the evicted boundary, and the watermark never claims the
        // missing prefix was executed as part of a complete stream.
        assert_eq!(
            n1.horizons()[&GroupId::new(0)],
            nodes[&p0].horizons()[&GroupId::new(0)],
            "frontier re-anchored to the live stream"
        );
    }

    /// Satellite regression (dead-subscriber prune-floor freeze): a
    /// subscriber that reported one durable mark and then crashed no
    /// longer pins the sequencer's `done`/`history` growth — once the
    /// coordination service reports it down, the retention floor
    /// advances past its stale mark (modulo a bounded courtesy band so
    /// a quick restart still replays exactly), and a late revival
    /// resyncing from below the advanced floor is answered with an
    /// explicit truncation.
    #[test]
    fn prune_floor_advances_past_dead_reporter() {
        let config = single_ring(3, RingTuning::default());
        let p0 = ProcessId::new(0);
        let g = GroupId::new(0);
        let mut n = WbcastNode::new(p0, config);
        let submit = |n: &mut WbcastNode, count: u64| {
            for i in 0..count {
                AmcastEngine::multicast(n, Time::ZERO, &[g], Bytes::from(i.to_le_bytes().to_vec()))
                    .unwrap();
            }
        };
        submit(&mut n, 50);
        // All three subscribers report once (which also lifts the
        // unreported-history cap); p2's mark then freezes at 10.
        for (p, ts) in [(0u32, 40u64), (1, 40), (2, 10)] {
            n.on_event(
                Time::ZERO,
                Event::Message {
                    from: ProcessId::new(p),
                    msg: WbMessage::CkptMark { group: g, ts }.into_frame(),
                },
            );
        }
        assert_eq!(n.sequencer_footprint(), (40, 40), "pruned to the min mark");
        // p2 never reports again; p0/p1 keep checkpointing. While p2 is
        // believed alive, its stale mark freezes the floor: state grows
        // with uptime.
        let burst = UNREPORTED_HISTORY_CAP as u64 + 250;
        submit(&mut n, burst);
        let live_mark = 10 + 40 + burst; // timestamps are dense from 1
        for p in [0u32, 1] {
            n.on_event(
                Time::ZERO,
                Event::Message {
                    from: ProcessId::new(p),
                    msg: WbMessage::CkptMark {
                        group: g,
                        ts: live_mark,
                    }
                    .into_frame(),
                },
            );
        }
        let (done, history) = n.sequencer_footprint();
        assert!(
            history > UNREPORTED_HISTORY_CAP && done > UNREPORTED_HISTORY_CAP,
            "a live-but-lagging reporter legitimately freezes the floor: {done}/{history}"
        );
        // The coordination service reports p2 crashed: the floor
        // advances past its mark, and retention drops to the bounded
        // courtesy band plus the live checkpoint window.
        n.on_event(
            Time::ZERO,
            Event::MembershipChange {
                ring: RingId::new(0),
                down: vec![ProcessId::new(2)],
            },
        );
        let (done, history) = n.sequencer_footprint();
        assert!(
            history <= UNREPORTED_HISTORY_CAP + 250 && done <= UNREPORTED_HISTORY_CAP + 250,
            "dead reporter no longer grows sequencer state with uptime: {done}/{history}"
        );
        // A revived p2 resyncing from its stale mark gets the gap
        // spelled out in the replay terminator instead of a silently
        // truncated stream.
        let out = n.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(2),
                msg: WbMessage::Resync {
                    group: g,
                    from_ts: 10,
                }
                .into_frame(),
            },
        );
        let gap = out.iter().find_map(|a| match a {
            Action::Send {
                to,
                msg: Message::Engine { payload, .. },
            } if *to == ProcessId::new(2) => match WbMessage::parse(payload.clone()) {
                Some(WbMessage::ResyncDone { gap_to, .. }) => Some(gap_to),
                _ => None,
            },
            _ => None,
        });
        let gap = gap.expect("replay terminator present");
        assert!(gap > 10, "below-floor resync flags the truncation: {gap}");
    }

    /// Health probe: a multi-group round whose frames to the other
    /// group's sequencer are all lost stays unsettled, and once it has
    /// waited past the stall window the probe flags it — while a fresh
    /// probe right after submission stays clean.
    #[test]
    fn health_probe_flags_wedged_round() {
        let config = disjoint_config(&[&[0], &[1]]);
        let p0 = ProcessId::new(0);
        let mut n = WbcastNode::new(p0, config.clone());
        let (_, actions) = AmcastEngine::multicast(
            &mut n,
            Time::ZERO,
            &[GroupId::new(0), GroupId::new(1)],
            Bytes::from_static(b"wedged"),
        )
        .unwrap();
        // The frames to group 1's sequencer (p1) are dropped: the round
        // can never collect its second timestamp proposal.
        drop(actions);
        assert!(
            AmcastEngine::health(&n, Time::ZERO).is_healthy(),
            "a just-submitted round is not a stall"
        );
        let delta_us = config
            .rings()
            .values()
            .map(|r| r.tuning().delta_us)
            .max()
            .unwrap();
        let late = Time::ZERO.plus(crate::telemetry::STALL_DELTAS * delta_us + 1);
        let report = AmcastEngine::health(&n, late);
        assert_eq!(
            report.issues_with("stalled_round").count(),
            1,
            "the wedged round trips the probe: {report:?}"
        );
        let snap = AmcastEngine::telemetry(&n);
        assert_eq!(snap.counter("round.submitted"), 1);
        assert_eq!(snap.counter("round.submitted_multi_group"), 1);
        assert_eq!(snap.counter("round.released"), 0);
        assert_eq!(snap.gauge("inflight"), 1);
    }

    /// Health probe: a live-but-lagging reporter freezing the
    /// checkpoint prune floor is flagged while the floor is frozen, and
    /// the flag clears once the coordination service declares the
    /// laggard down and the floor advances again.
    #[test]
    fn health_probe_flags_frozen_prune_floor() {
        let config = single_ring(3, RingTuning::default());
        let p0 = ProcessId::new(0);
        let g = GroupId::new(0);
        let mut n = WbcastNode::new(p0, config);
        // Everyone reports once, then p2's mark freezes while the
        // others keep checkpointing through a large burst.
        for i in 0..50u64 {
            AmcastEngine::multicast(
                &mut n,
                Time::ZERO,
                &[g],
                Bytes::from(i.to_le_bytes().to_vec()),
            )
            .unwrap();
        }
        for (p, ts) in [(0u32, 40u64), (1, 40), (2, 10)] {
            n.on_event(
                Time::ZERO,
                Event::Message {
                    from: ProcessId::new(p),
                    msg: WbMessage::CkptMark { group: g, ts }.into_frame(),
                },
            );
        }
        let burst = UNREPORTED_HISTORY_CAP as u64 + 250;
        for i in 0..burst {
            AmcastEngine::multicast(
                &mut n,
                Time::ZERO,
                &[g],
                Bytes::from(i.to_le_bytes().to_vec()),
            )
            .unwrap();
        }
        let live_mark = 10 + 40 + burst;
        for p in [0u32, 1] {
            n.on_event(
                Time::ZERO,
                Event::Message {
                    from: ProcessId::new(p),
                    msg: WbMessage::CkptMark {
                        group: g,
                        ts: live_mark,
                    }
                    .into_frame(),
                },
            );
        }
        let report = AmcastEngine::health(&n, Time::ZERO);
        assert_eq!(
            report.issues_with("frozen_prune_floor").count(),
            1,
            "over-cap retention with a frozen mark trips the probe: {report:?}"
        );
        assert!(
            AmcastEngine::telemetry(&n).gauge("seq.history_retained")
                > UNREPORTED_HISTORY_CAP as u64
        );
        n.on_event(
            Time::ZERO,
            Event::MembershipChange {
                ring: RingId::new(0),
                down: vec![ProcessId::new(2)],
            },
        );
        assert_eq!(
            AmcastEngine::health(&n, Time::ZERO)
                .issues_with("frozen_prune_floor")
                .count(),
            0,
            "declaring the laggard down advances the floor and clears the flag"
        );
    }

    /// Health probe: a recovering subscriber whose resync is still
    /// unanswered holds deliveries, and the probe says so until the
    /// replay terminator arrives.
    #[test]
    fn health_probe_flags_held_deliveries_during_resync() {
        let config = single_ring(2, RingTuning::default());
        let p1 = ProcessId::new(1);
        let mut fresh = WbcastNode::recovering(p1, config);
        let _resync_frames = AmcastEngine::resume(&mut fresh, Time::ZERO);
        let report = AmcastEngine::health(&fresh, Time::ZERO);
        assert_eq!(
            report.issues_with("held_deliveries").count(),
            1,
            "the outstanding resync holds the stream: {report:?}"
        );
        assert_eq!(
            AmcastEngine::telemetry(&fresh).gauge("sub.resyncing_streams"),
            1
        );
    }
}
