//! A timestamp-based Skeen-style ("white-box") atomic multicast engine.
//!
//! ## Message flow
//!
//! Each multicast group has one *sequencer*: the coordinator of the
//! ring the group maps to in the [`ClusterConfig`] (in a full
//! deployment the sequencer's counter would itself be Paxos-replicated
//! inside the group, as in *White-Box Atomic Multicast*; this engine
//! models the failure-free ordering path).
//!
//! ```text
//!  proposer            sequencer of g                subscribers of g
//!     │  Submit(g, v)       │                               │
//!     ├────────────────────▶│ ts := clock(g)++              │
//!     │                     ├── Ordered(g, ts, v) ─────────▶│  buffer by ts
//!     │                     │                               │  deliver in global
//!     │                     ├── Heartbeat(g, promise) ──···▶│  (ts, g) order
//! ```
//!
//! 1. **Submit** — a proposer assigns the value its [`ValueId`] and
//!    forwards it to the group's sequencer (one WAN hop; zero if the
//!    proposer *is* the sequencer). This is the step that makes the
//!    engine *genuine*: only the destination group's processes are
//!    involved.
//! 2. **Order** — the sequencer assigns the value the next per-group
//!    timestamp and fans `Ordered(group, ts, value)` out to the group's
//!    subscribers. Timestamps are Lamport-style hybrid clocks: they
//!    advance with submissions *and* with elapsed time (in a fixed
//!    quantum shared by every group, [`CLOCK_QUANTUM_US`]), so
//!    timestamps of different groups stay loosely aligned without any
//!    cross-group communication — even when rings configure different
//!    heartbeat intervals Δ.
//! 3. **Deliver** — every subscriber delivers buffered values in the
//!    global lexicographic `(ts, group)` order. A value `(ts, g)` is
//!    deliverable once no other subscribed group can still produce a
//!    smaller key, i.e. for every other subscribed group `g'` the
//!    subscriber has observed a timestamp `≥ ts` (if `g' < g`) or
//!    `≥ ts − 1` (if `g' > g`). Channels are reliable FIFO (the
//!    [`Action::Send`] contract), so "observed timestamp" is simply the
//!    largest received one.
//! 4. **Heartbeat** — sequencers of idle groups periodically promise
//!    "all my future timestamps exceed X" so that other groups'
//!    deliveries are never blocked by an idle group: the analogue of
//!    Multi-Ring Paxos rate leveling, paced by the ring's Δ.
//!
//! Compared with the ring engine, the ordering path for a value is
//! `proposer → sequencer → subscribers` — one message delay fewer than
//! circulating a ring and merging — at the price of funnelling each
//! group's traffic through one sequencer and (in this implementation)
//! no fault-tolerant ordering path.
//!
//! All engine traffic travels in opaque
//! [`Message::Engine`](multiring_paxos::event::Message::Engine) frames
//! with wire id [`WBCAST_WIRE_ID`], so every existing runtime
//! (simulator, TCP transport) carries it unchanged.

use crate::engine::AmcastEngine;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use multiring_paxos::app::encode_command;
use multiring_paxos::config::ClusterConfig;
use multiring_paxos::event::{Action, Event, Message, StateMachine, TimerKind};
use multiring_paxos::node::MulticastError;
use multiring_paxos::types::{
    ClientId, GroupId, InstanceId, ProcessId, RingId, Time, Value, ValueId,
};
use std::collections::BTreeMap;
use std::fmt;

/// Wire id of this engine inside [`Message::Engine`] frames.
pub const WBCAST_WIRE_ID: u8 = 1;

const TAG_SUBMIT: u8 = 1;
const TAG_ORDERED: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;

/// The engine's private messages, carried inside [`Message::Engine`].
#[derive(Clone, PartialEq, Debug)]
enum WbMessage {
    /// A proposer submits a value to the group's sequencer.
    Submit { group: GroupId, value: Value },
    /// The sequencer's ordering decision, fanned out to subscribers.
    Ordered {
        group: GroupId,
        ts: u64,
        value: Value,
    },
    /// The sequencer's promise that all future timestamps of `group`
    /// are strictly greater than `ts`.
    Heartbeat { group: GroupId, ts: u64 },
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    buf.put_u32_le(v.id.proposer.value());
    buf.put_u64_le(v.id.seq);
    buf.put_u16_le(v.group.value());
    buf.put_u32_le(v.payload.len() as u32);
    buf.put_slice(&v.payload);
}

fn get_value(buf: &mut Bytes) -> Option<Value> {
    if buf.remaining() < 4 + 8 + 2 + 4 {
        return None;
    }
    let proposer = ProcessId::new(buf.get_u32_le());
    let seq = buf.get_u64_le();
    let group = GroupId::new(buf.get_u16_le());
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let payload = buf.copy_to_bytes(len);
    Some(Value::new(ValueId::new(proposer, seq), group, payload))
}

impl WbMessage {
    /// Wraps this message into the shared [`Message`] vocabulary.
    fn into_frame(self) -> Message {
        let mut buf = BytesMut::new();
        match &self {
            WbMessage::Submit { group, value } => {
                buf.put_u8(TAG_SUBMIT);
                buf.put_u16_le(group.value());
                put_value(&mut buf, value);
            }
            WbMessage::Ordered { group, ts, value } => {
                buf.put_u8(TAG_ORDERED);
                buf.put_u16_le(group.value());
                buf.put_u64_le(*ts);
                put_value(&mut buf, value);
            }
            WbMessage::Heartbeat { group, ts } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u16_le(group.value());
                buf.put_u64_le(*ts);
            }
        }
        Message::Engine {
            engine: WBCAST_WIRE_ID,
            payload: buf.freeze(),
        }
    }

    /// Parses an engine payload; `None` on malformed or foreign frames.
    fn parse(mut payload: Bytes) -> Option<WbMessage> {
        if payload.remaining() < 1 + 2 {
            return None;
        }
        let tag = payload.get_u8();
        let group = GroupId::new(payload.get_u16_le());
        match tag {
            TAG_SUBMIT => Some(WbMessage::Submit {
                group,
                value: get_value(&mut payload)?,
            }),
            TAG_ORDERED => {
                if payload.remaining() < 8 {
                    return None;
                }
                let ts = payload.get_u64_le();
                Some(WbMessage::Ordered {
                    group,
                    ts,
                    value: get_value(&mut payload)?,
                })
            }
            TAG_HEARTBEAT => {
                if payload.remaining() < 8 {
                    return None;
                }
                Some(WbMessage::Heartbeat {
                    group,
                    ts: payload.get_u64_le(),
                })
            }
            _ => None,
        }
    }
}

/// Per-group sequencer state (held by the group's coordinator).
#[derive(Debug)]
struct Sequencer {
    /// The ring whose Δ paces this group's heartbeats.
    ring: RingId,
    /// Heartbeat interval, microseconds.
    delta_us: u64,
    /// Next timestamp to assign (timestamps start at 1).
    next_ts: u64,
    /// Highest promise already heartbeated (avoids redundant sends).
    promised: u64,
    /// The group's subscribers, precomputed: the fan-out target of
    /// every `Ordered`/`Heartbeat`, resolved once instead of scanning
    /// the subscription map per message.
    subscribers: Vec<ProcessId>,
}

/// The shared time unit of the hybrid clocks, microseconds. Every
/// sequencer ticks in this fixed quantum — *not* in its ring's Δ —
/// so groups with different Δ still advance their timestamps at the
/// same wall-clock rate and no subscriber's delivery of one group can
/// lag another group's clock without bound. Δ only paces how often
/// the promise is *communicated* (heartbeats).
///
/// The quantum also bounds cross-group release: when a busy group's
/// count-driven timestamps outrun an idle group's time-driven promise,
/// the busy group's deliveries at shared subscribers drain at most
/// `1 / CLOCK_QUANTUM_US` values per second (the [`Sequencer::observe`]
/// rule lifts this cap entirely when the idle sequencer's process also
/// subscribes to the busy group). One microsecond puts that floor at
/// 10⁶ values/s/group — above any workload this simulator drives — at
/// no cost: timestamps are u64 and their magnitude carries no meaning.
pub const CLOCK_QUANTUM_US: u64 = 1;

impl Sequencer {
    /// Advances the hybrid clock with elapsed time: future timestamps
    /// of this group always exceed `now / CLOCK_QUANTUM_US`, keeping
    /// independent groups loosely aligned so no group waits long on
    /// another.
    fn bump_clock(&mut self, now: Time) {
        let floor = now.as_micros() / CLOCK_QUANTUM_US + 1;
        self.next_ts = self.next_ts.max(floor);
    }

    /// Lamport receive rule: a sequencer that observes another group's
    /// timestamp jumps its own clock past it, so a busy group's
    /// count-driven timestamps never outrun an idle co-located group's
    /// promises (which would cap the busy group's delivery rate at the
    /// time-based tick rate).
    fn observe(&mut self, ts: u64) {
        self.next_ts = self.next_ts.max(ts + 1);
    }
}

/// Per-subscribed-group delivery state.
#[derive(Debug, Default)]
struct Subscription {
    /// Largest timestamp observed from the group's sequencer. FIFO
    /// channels make this a frontier: everything at or below it has
    /// been received.
    horizon: u64,
    /// Ordered-but-not-yet-deliverable values, keyed by timestamp.
    pending: BTreeMap<u64, Value>,
}

/// The per-process state machine of the white-box engine: sequencer
/// roles for the groups this process coordinates, plus the delivery
/// buffer over its subscribed groups.
pub struct WbcastNode {
    me: ProcessId,
    config: ClusterConfig,
    /// Groups this process sequences.
    led: BTreeMap<GroupId, Sequencer>,
    /// Groups this process subscribes to.
    subs: BTreeMap<GroupId, Subscription>,
    /// Per-proposer sequence numbers for [`ValueId`] assignment.
    next_seq: u64,
    /// Values delivered (progress metric).
    delivered: u64,
}

impl fmt::Debug for WbcastNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WbcastNode")
            .field("me", &self.me)
            .field("leads", &self.led.keys().collect::<Vec<_>>())
            .field("subscribes", &self.subs.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl WbcastNode {
    /// Creates the engine for process `me` over `config`. The
    /// sequencer of each group is the coordinator of the group's ring;
    /// subscriptions are the config's learner subscriptions.
    pub fn new(me: ProcessId, config: ClusterConfig) -> Self {
        let mut led = BTreeMap::new();
        for (&group, &ring_id) in config.groups() {
            let ring = config.ring(ring_id).expect("validated config");
            if ring.coordinator() == me {
                led.insert(
                    group,
                    Sequencer {
                        ring: ring_id,
                        delta_us: ring.tuning().delta_us,
                        next_ts: 1,
                        promised: 0,
                        subscribers: config.subscribers_of(group),
                    },
                );
            }
        }
        let subs = config
            .subscriptions_of(me)
            .into_iter()
            .map(|g| (g, Subscription::default()))
            .collect();
        Self {
            me,
            config,
            led,
            subs,
            next_seq: 0,
            delivered: 0,
        }
    }

    /// The process this engine embodies.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Values delivered so far (progress metric).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The timestamp frontier per subscribed group (inspection: equal
    /// frontiers on two subscribers of a group mean equal histories).
    pub fn horizons(&self) -> BTreeMap<GroupId, u64> {
        self.subs.iter().map(|(&g, s)| (g, s.horizon)).collect()
    }

    /// Ordered-but-undeliverable values buffered (backpressure metric).
    pub fn pending_len(&self) -> usize {
        self.subs.values().map(|s| s.pending.len()).sum()
    }

    fn sequencer_of(&self, group: GroupId) -> Option<ProcessId> {
        let ring = self.config.ring_of_group(group)?;
        Some(self.config.ring(ring)?.coordinator())
    }

    /// Routes an engine message to a peer, or handles it inline when
    /// addressed to this process itself.
    fn route(&mut self, now: Time, to: ProcessId, msg: WbMessage, out: &mut Vec<Action>) {
        if to == self.me {
            self.on_wb_message(now, msg, out);
        } else {
            out.push(Action::Send {
                to,
                msg: msg.into_frame(),
            });
        }
    }

    /// Sequencer side: assigns the next timestamp and fans out. The
    /// frame is encoded once and shared across subscribers (`Message`
    /// clones are cheap: the payload is a reference-counted `Bytes`).
    fn order_value(&mut self, now: Time, group: GroupId, value: Value, out: &mut Vec<Action>) {
        let me = self.me;
        let Some(seq) = self.led.get_mut(&group) else {
            // Stale submission (this process no longer sequences the
            // group); the proposer's client will retry elsewhere.
            return;
        };
        seq.bump_clock(now);
        let ts = seq.next_ts;
        seq.next_ts += 1;
        let frame = WbMessage::Ordered {
            group,
            ts,
            value: value.clone(),
        }
        .into_frame();
        let mut deliver_locally = false;
        for &to in &seq.subscribers {
            if to == me {
                deliver_locally = true;
            } else {
                out.push(Action::Send {
                    to,
                    msg: frame.clone(),
                });
            }
        }
        if deliver_locally {
            self.on_ordered(group, ts, value, out);
        }
    }

    /// Lamport receive rule over every sequencer this process hosts:
    /// any timestamp observed from another group drags the local
    /// clocks past it (see [`Sequencer::observe`]).
    fn observe_ts(&mut self, from_group: GroupId, ts: u64) {
        for (&g, seq) in self.led.iter_mut() {
            if g != from_group {
                seq.observe(ts);
            }
        }
    }

    /// Subscriber side: buffers and drains in global `(ts, group)` order.
    fn on_ordered(&mut self, group: GroupId, ts: u64, value: Value, out: &mut Vec<Action>) {
        self.observe_ts(group, ts);
        let Some(sub) = self.subs.get_mut(&group) else {
            return;
        };
        sub.horizon = sub.horizon.max(ts);
        sub.pending.insert(ts, value);
        self.drain(out);
    }

    fn on_heartbeat(&mut self, group: GroupId, ts: u64, out: &mut Vec<Action>) {
        self.observe_ts(group, ts);
        let Some(sub) = self.subs.get_mut(&group) else {
            return;
        };
        if ts <= sub.horizon {
            return;
        }
        sub.horizon = ts;
        self.drain(out);
    }

    /// Delivers every buffered value whose `(ts, group)` key can no
    /// longer be preceded: for each other subscribed group the observed
    /// frontier must reach `ts` (groups ordered before `group` at equal
    /// timestamps) or `ts − 1` (groups ordered after).
    fn drain(&mut self, out: &mut Vec<Action>) {
        loop {
            let mut best: Option<(u64, GroupId)> = None;
            for (&g, s) in &self.subs {
                if let Some((&ts, _)) = s.pending.iter().next() {
                    let key = (ts, g);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let Some((ts, g)) = best else { break };
            let releasable = self
                .subs
                .iter()
                .all(|(&g2, s2)| g2 == g || s2.horizon >= if g2 < g { ts } else { ts - 1 });
            if !releasable {
                break;
            }
            let value = self
                .subs
                .get_mut(&g)
                .expect("candidate group is subscribed")
                .pending
                .remove(&ts)
                .expect("candidate timestamp is pending");
            self.delivered += 1;
            out.push(Action::Deliver {
                group: g,
                instance: InstanceId::new(ts),
                value,
            });
        }
    }

    fn on_wb_message(&mut self, now: Time, msg: WbMessage, out: &mut Vec<Action>) {
        match msg {
            WbMessage::Submit { group, value } => self.order_value(now, group, value, out),
            WbMessage::Ordered { group, ts, value } => self.on_ordered(group, ts, value, out),
            WbMessage::Heartbeat { group, ts } => self.on_heartbeat(group, ts, out),
        }
    }

    /// Handles a client request arriving at this proposer, mirroring
    /// the ring engine: the command is framed with its client session
    /// so any subscriber can answer.
    fn on_request(
        &mut self,
        now: Time,
        client: ClientId,
        request: u64,
        group: GroupId,
        payload: Bytes,
        out: &mut Vec<Action>,
    ) {
        let framed = encode_command(client, request, &payload);
        if let Ok((_, actions)) = AmcastEngine::multicast(self, now, group, framed) {
            out.extend(actions);
        }
        // Not a proposer / unknown group: drop; the client retries
        // against a correct proposer (same policy as the ring engine).
    }

    fn dispatch_message(&mut self, now: Time, msg: Message, out: &mut Vec<Action>) {
        match msg {
            Message::Engine { engine, payload } if engine == WBCAST_WIRE_ID => {
                if let Some(wb) = WbMessage::parse(payload) {
                    self.on_wb_message(now, wb, out);
                }
            }
            Message::Batch(msgs) => {
                for m in msgs {
                    self.dispatch_message(now, m, out);
                }
            }
            Message::Request {
                client,
                request,
                group,
                payload,
            } => self.on_request(now, client, request, group, payload, out),
            // Ring traffic, trim/checkpoint protocol and foreign engine
            // frames do not concern this engine.
            _ => {}
        }
    }

    fn heartbeat(&mut self, now: Time, ring: RingId, out: &mut Vec<Action>) {
        let groups: Vec<GroupId> = self
            .led
            .iter()
            .filter(|(_, s)| s.ring == ring)
            .map(|(&g, _)| g)
            .collect();
        let mut delta_us = None;
        let me = self.me;
        for group in groups {
            let (promise, heartbeat_locally) = {
                let seq = self.led.get_mut(&group).expect("led group");
                seq.bump_clock(now);
                let promise = seq.next_ts - 1;
                let fresh = promise > seq.promised;
                if fresh {
                    seq.promised = promise;
                }
                delta_us = Some(seq.delta_us);
                if !fresh {
                    continue;
                }
                let frame = WbMessage::Heartbeat { group, ts: promise }.into_frame();
                let mut heartbeat_locally = false;
                for &to in &seq.subscribers {
                    if to == me {
                        heartbeat_locally = true;
                    } else {
                        out.push(Action::Send {
                            to,
                            msg: frame.clone(),
                        });
                    }
                }
                (promise, heartbeat_locally)
            };
            if heartbeat_locally {
                self.on_heartbeat(group, promise, out);
            }
        }
        // Exactly one re-arm per ring, regardless of how many led
        // groups share it: runtimes do not dedupe timers, so one
        // SetTimer per group would multiply live timers every Δ.
        if let Some(delta_us) = delta_us {
            out.push(Action::SetTimer {
                after_us: delta_us.max(1),
                timer: TimerKind::Delta(ring),
            });
        }
    }

    fn on_start(&mut self, out: &mut Vec<Action>) {
        // One Δ timer per distinct ring this process sequences groups
        // of (several groups may share a ring).
        let mut rings: BTreeMap<RingId, u64> = BTreeMap::new();
        for seq in self.led.values() {
            rings.entry(seq.ring).or_insert(seq.delta_us);
        }
        for (ring, delta_us) in rings {
            out.push(Action::SetTimer {
                after_us: delta_us.max(1),
                timer: TimerKind::Delta(ring),
            });
        }
    }
}

impl StateMachine for WbcastNode {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        match event {
            Event::Start => self.on_start(&mut out),
            Event::Message { msg, .. } => self.dispatch_message(now, msg, &mut out),
            Event::Timer(TimerKind::Delta(ring)) => self.heartbeat(now, ring, &mut out),
            // The engine keeps no stable storage and (in this
            // implementation) a static sequencer assignment; other
            // timers, persistence completions and membership events
            // are ring-engine concerns.
            Event::Timer(_)
            | Event::PersistDone(_)
            | Event::CoordinatorChange { .. }
            | Event::MembershipChange { .. } => {}
        }
        out
    }

    fn process_id(&self) -> ProcessId {
        self.me
    }
}

impl AmcastEngine for WbcastNode {
    fn multicast(
        &mut self,
        now: Time,
        group: GroupId,
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        let Some(ring_id) = self.config.ring_of_group(group) else {
            return Err(MulticastError::UnknownGroup(group));
        };
        let ring = self.config.ring(ring_id).expect("validated config");
        if !ring.roles_of(self.me).is_proposer() {
            return Err(MulticastError::NotAProposer(group));
        }
        self.next_seq += 1;
        let id = ValueId::new(self.me, self.next_seq);
        let value = Value::new(id, group, payload);
        let sequencer = self.sequencer_of(group).expect("group has a ring");
        let mut out = Vec::new();
        self.route(now, sequencer, WbMessage::Submit { group, value }, &mut out);
        Ok((id, out))
    }

    fn engine_name(&self) -> &'static str {
        "wbcast"
    }

    // `backlog` keeps its default of 0: the trait defines it as values
    // *submitted locally* and not yet ordered, which this engine does
    // not track (submissions are fire-and-forget to the sequencer).
    // Subscriber-side buffering is exposed as [`WbcastNode::pending_len`].
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::config::{single_ring, RingSpec, RingTuning, Roles};
    use std::collections::BTreeMap as Map;

    /// Executes all Send actions at zero latency (in-order), collecting
    /// deliveries per process.
    fn pump(
        nodes: &mut Map<ProcessId, WbcastNode>,
        mut queue: Vec<(ProcessId, Action)>,
    ) -> Map<ProcessId, Vec<(GroupId, u64, ValueId)>> {
        let mut delivered: Map<ProcessId, Vec<(GroupId, u64, ValueId)>> = Map::new();
        let mut steps = 0;
        while let Some((origin, action)) = queue.pop() {
            steps += 1;
            assert!(steps < 100_000, "no quiescence");
            match action {
                Action::Send { to, msg } => {
                    let node = nodes.get_mut(&to).expect("known process");
                    for a in node.on_event(Time::ZERO, Event::Message { from: origin, msg }) {
                        queue.push((to, a));
                    }
                }
                Action::Deliver {
                    group,
                    instance,
                    value,
                } => delivered
                    .entry(origin)
                    .or_default()
                    .push((group, instance.value(), value.id)),
                _ => {}
            }
        }
        delivered
    }

    #[test]
    fn single_group_delivers_in_submission_order_everywhere() {
        let config = single_ring(3, RingTuning::default());
        let mut nodes: Map<ProcessId, WbcastNode> = (0..3)
            .map(|i| {
                let p = ProcessId::new(i);
                (p, WbcastNode::new(p, config.clone()))
            })
            .collect();
        let mut queue = Vec::new();
        for proposer in [1u32, 2, 0] {
            let p = ProcessId::new(proposer);
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p).unwrap(),
                Time::ZERO,
                GroupId::new(0),
                Bytes::from(vec![proposer as u8]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p, a)));
        }
        let delivered = pump(&mut nodes, queue);
        assert_eq!(delivered.len(), 3, "all three subscribers deliver");
        let reference = &delivered[&ProcessId::new(0)];
        assert_eq!(reference.len(), 3);
        for seq in delivered.values() {
            assert_eq!(seq, reference, "identical delivery sequences");
        }
        // Timestamps are dense from 1.
        let ts: Vec<u64> = reference.iter().map(|(_, t, _)| *t).collect();
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    fn multicast_to_unknown_group_fails() {
        let config = single_ring(2, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let err =
            AmcastEngine::multicast(&mut n, Time::ZERO, GroupId::new(7), Bytes::new()).unwrap_err();
        assert_eq!(err, MulticastError::UnknownGroup(GroupId::new(7)));
    }

    #[test]
    fn request_is_framed_ordered_and_delivered() {
        let config = single_ring(1, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let out = n.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(9),
                msg: Message::Request {
                    client: ClientId::new(4),
                    request: 1,
                    group: GroupId::new(0),
                    payload: Bytes::from_static(b"cmd"),
                },
            },
        );
        // Singleton: submit, order and deliver complete inline.
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Deliver { group, .. } if *group == GroupId::new(0))));
        assert_eq!(n.delivered(), 1);
    }

    #[test]
    fn heartbeats_advance_idle_groups() {
        let config = single_ring(1, RingTuning::default());
        let mut n = WbcastNode::new(ProcessId::new(0), config);
        let start = n.on_event(Time::ZERO, Event::Start);
        assert!(start.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                timer: TimerKind::Delta(_),
                ..
            }
        )));
        let out = n.on_event(
            Time::from_millis(50),
            Event::Timer(TimerKind::Delta(RingId::new(0))),
        );
        // Re-armed, and the (self-subscribed) horizon advanced with time.
        assert!(out.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                timer: TimerKind::Delta(_),
                ..
            }
        )));
        assert!(n.horizons()[&GroupId::new(0)] > 0);
    }

    #[test]
    fn observed_timestamps_drag_idle_sequencer_clocks_forward() {
        // Two groups over the same processes; p0 sequences both. A burst
        // into group 0 drives its count-based timestamps far past wall
        // clock; the Lamport receive rule must drag group 1's clock
        // along, so group 1's next heartbeat promise releases the burst
        // instead of capping delivery at the time-based tick rate.
        let mut b = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring));
            for p in 0..2u32 {
                spec = spec.member(ProcessId::new(p), Roles::ALL);
            }
            b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        }
        for p in 0..2u32 {
            for g in 0..2u16 {
                b = b.subscribe(ProcessId::new(p), GroupId::new(g));
            }
        }
        let config = b.build().expect("two-group config");
        let mut nodes: Map<ProcessId, WbcastNode> = (0..2)
            .map(|i| {
                let p = ProcessId::new(i);
                (p, WbcastNode::new(p, config.clone()))
            })
            .collect();
        // 40 submissions to group 0 only, all at t=0 (time-based clock
        // floor stays at 1, so timestamps run ahead on counts alone).
        let mut queue = Vec::new();
        let p0 = ProcessId::new(0);
        for i in 0..40u8 {
            let (_, actions) = AmcastEngine::multicast(
                nodes.get_mut(&p0).unwrap(),
                Time::ZERO,
                GroupId::new(0),
                Bytes::from(vec![i]),
            )
            .unwrap();
            queue.extend(actions.into_iter().map(|a| (p0, a)));
        }
        let delivered = pump(&mut nodes, queue);
        // One group-1 heartbeat at t=0 must now promise past the burst
        // (clock observed ts=40) and release everything at once.
        let hb = nodes
            .get_mut(&p0)
            .unwrap()
            .on_event(Time::ZERO, Event::Timer(TimerKind::Delta(RingId::new(1))));
        let mut queue: Vec<(ProcessId, Action)> = hb.into_iter().map(|a| (p0, a)).collect();
        queue.retain(|(_, a)| !matches!(a, Action::SetTimer { .. }));
        let late = pump(&mut nodes, queue);
        let total: usize = [&delivered, &late]
            .iter()
            .flat_map(|d| d.get(&p0))
            .map(|v| v.len())
            .sum();
        assert_eq!(total, 40, "idle group 1 must not throttle group 0's burst");
    }

    #[test]
    fn wire_roundtrip_of_engine_frames() {
        let value = Value::new(
            ValueId::new(ProcessId::new(3), 9),
            GroupId::new(1),
            Bytes::from_static(b"payload"),
        );
        for msg in [
            WbMessage::Submit {
                group: GroupId::new(1),
                value: value.clone(),
            },
            WbMessage::Ordered {
                group: GroupId::new(1),
                ts: 42,
                value,
            },
            WbMessage::Heartbeat {
                group: GroupId::new(0),
                ts: 7,
            },
        ] {
            let Message::Engine { engine, payload } = msg.clone().into_frame() else {
                panic!("expected engine frame");
            };
            assert_eq!(engine, WBCAST_WIRE_ID);
            assert_eq!(WbMessage::parse(payload), Some(msg));
        }
        assert_eq!(WbMessage::parse(Bytes::from_static(b"")), None);
        assert_eq!(WbMessage::parse(Bytes::from_static(&[9, 0, 0])), None);
    }
}
