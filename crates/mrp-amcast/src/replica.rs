//! Engine-generic state-machine replication: couples any
//! [`AmcastEngine`] with an [`Application`], executing deliveries,
//! routing replies to client sessions, taking periodic checkpoints
//! through the engine's watermark surface, trimming engine state once a
//! checkpoint is durable, and rejoining the streams from the latest
//! local checkpoint after a crash.
//!
//! ## Checkpoint lifecycle
//!
//! 1. On every `CheckpointTick` the replica reads the engine's
//!    [`delivery watermark`](AmcastEngine::watermark), snapshots the
//!    application, packs the engine's own
//!    [`checkpoint_state`](AmcastEngine::checkpoint_state) in front of
//!    the snapshot and persists all of it as one
//!    [`PersistRecord::Checkpoint`].
//! 2. When the write completes durably ([`Event::PersistDone`]) the
//!    checkpoint becomes *stable*: trim queries are answered from it,
//!    and the engine gets to [`trim`](AmcastEngine::trim) protocol state
//!    below the watermark (the white-box engine prunes dedup records and
//!    reports the marks to its sequencers; the ring engine's acceptor
//!    logs are trimmed by the coordinated quorum protocol fed by the
//!    `TrimQuery` answers below).
//! 3. After a crash, the runtime rebuilds the replica with
//!    [`EngineReplica::recovering`], handing it the engine's per-ring
//!    stable state (acceptor logs, ring engine only) and the latest
//!    local checkpoint. The application restores the snapshot, the
//!    engine [`install`](AmcastEngine::install_checkpoint)s the
//!    watermark, and the first [`Event::Start`] issues the engine's
//!    [`resume`](AmcastEngine::resume) actions to re-fetch everything
//!    between the watermark and the live streams.
//!
//! Compared with the ring-specific
//! [`multiring_paxos::replica::Replica`], this replica recovers from its
//! *local* checkpoint only — fetching a fresher checkpoint from a
//! partition peer (Section 5.2's `Q_R` query) remains `Replica`-only.
//! It does serve `TrimQuery` (so acceptor-log trimming works with any
//! hosted engine) and `CheckpointQuery`/`CheckpointFetch` (so recovering
//! full `Replica` peers can fetch its checkpoints).

use crate::engine::{AmcastEngine, AnyEngine, EngineKind, Watermark};
use crate::telemetry::{HealthReport, RecoveryCounters, TelemetrySnapshot};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use multiring_paxos::app::{Application, Delivery, Reply};
use multiring_paxos::config::ClusterConfig;
use multiring_paxos::event::{
    Action, Event, Message, PersistRecord, PersistToken, StateMachine, TimerKind,
};
use multiring_paxos::paxos::AcceptorRecovery;
use multiring_paxos::recovery::TrimResponder;
use multiring_paxos::replica::CheckpointPolicy;
use multiring_paxos::types::{ProcessId, RingId, Time};
use std::collections::BTreeMap;
use std::fmt;

/// Packs a checkpoint blob: the engine's private recovery state in
/// front of the application snapshot, so both travel in one
/// [`PersistRecord::Checkpoint`].
fn pack_checkpoint(engine_state: &Bytes, app_snapshot: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + engine_state.len() + app_snapshot.len());
    buf.put_u64_le(engine_state.len() as u64);
    buf.put_slice(engine_state);
    buf.put_slice(app_snapshot);
    buf.freeze()
}

/// Splits a blob produced by [`pack_checkpoint`] back into
/// `(engine_state, app_snapshot)`; `None` on a malformed blob.
fn unpack_checkpoint(blob: &Bytes) -> Option<(Bytes, Bytes)> {
    let mut buf = blob.clone();
    if buf.remaining() < 8 {
        return None;
    }
    let engine_len = buf.get_u64_le() as usize;
    if buf.remaining() < engine_len {
        return None;
    }
    let engine_state = buf.copy_to_bytes(engine_len);
    Some((engine_state, buf))
}

/// A replicated service endpoint over a configurable ordering engine,
/// with engine-generic checkpointing and crash recovery.
pub struct EngineReplica<A> {
    engine: AnyEngine,
    app: A,
    policy: CheckpointPolicy,
    /// Answers the coordinated trim protocol from the stable watermark.
    responder: TrimResponder,
    /// Last durable checkpoint: watermark + packed blob, served to
    /// recovering `Replica` peers and used to answer trim queries.
    stable: Option<(Watermark, Bytes)>,
    /// Checkpoints written but not yet durable, keyed by persist token.
    pending_ckpt: BTreeMap<PersistToken, (Watermark, Bytes)>,
    ckpt_token_seed: u64,
    /// Whether the next `Event::Start` must issue the engine's resume
    /// actions (set by [`EngineReplica::recovering`]).
    resume_pending: bool,
    /// Statistics: commands executed since start.
    executed: u64,
    /// Statistics: checkpoints completed since start.
    checkpoints_taken: u64,
    /// The engine's recovery counters as of the last event, diffed
    /// after every event so recovery actions (takeovers, orphan
    /// rounds, truncated resyncs, checkpoint installs) are logged the
    /// moment they happen instead of sitting in a poll-only counter.
    last_recovery: RecoveryCounters,
}

impl<A: fmt::Debug> fmt::Debug for EngineReplica<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineReplica")
            .field("engine", &self.engine.engine_name())
            .field("app", &self.app)
            .field("stable", &self.stable.as_ref().map(|(w, _)| w))
            .finish_non_exhaustive()
    }
}

impl<A: Application> EngineReplica<A> {
    /// A fresh replica (first boot) running `app` over an engine of
    /// `kind`, checkpointing per `policy`.
    pub fn new(
        kind: EngineKind,
        me: ProcessId,
        config: ClusterConfig,
        app: A,
        policy: CheckpointPolicy,
    ) -> Self {
        Self {
            engine: kind.build(me, config),
            app,
            policy,
            responder: TrimResponder::new(),
            stable: None,
            pending_ckpt: BTreeMap::new(),
            // Disjoint from the tokens the hosted engine mints itself.
            ckpt_token_seed: u64::MAX / 2,
            resume_pending: false,
            executed: 0,
            checkpoints_taken: 0,
            last_recovery: RecoveryCounters::default(),
        }
    }

    /// A replica restarting after a crash: `acceptor_logs` is the
    /// engine's per-ring stable state (ring engine; empty for engines
    /// without one) and `checkpoint` the latest durable local checkpoint
    /// — the watermark plus the packed blob previously persisted via
    /// [`PersistRecord::Checkpoint`] — both loaded by the runtime from
    /// stable storage. The application snapshot is restored immediately;
    /// the engine's catch-up ([`AmcastEngine::resume`]) runs on
    /// [`Event::Start`].
    pub fn recovering(
        kind: EngineKind,
        me: ProcessId,
        config: ClusterConfig,
        app: A,
        policy: CheckpointPolicy,
        acceptor_logs: BTreeMap<RingId, AcceptorRecovery>,
        checkpoint: Option<(Watermark, Bytes)>,
    ) -> Self {
        let mut replica = Self {
            engine: kind.build_recovering(me, config, acceptor_logs),
            app,
            policy,
            responder: TrimResponder::new(),
            stable: None,
            pending_ckpt: BTreeMap::new(),
            ckpt_token_seed: u64::MAX / 2,
            resume_pending: true,
            executed: 0,
            checkpoints_taken: 0,
            // Deliberately zero even though the engine may bump a
            // counter while installing the checkpoint below: the first
            // event's diff then reports the install, keeping recovery
            // loud from the very first action.
            last_recovery: RecoveryCounters::default(),
        };
        if let Some((watermark, blob)) = checkpoint {
            if let Some((engine_state, app_snapshot)) = unpack_checkpoint(&blob) {
                replica.app.restore(&app_snapshot);
                replica.engine.install_checkpoint(&watermark, &engine_state);
                replica.responder.set_stable(watermark.clone());
                replica.stable = Some((watermark, blob));
            }
        }
        replica
    }

    /// The ordering engine.
    pub fn engine(&self) -> &AnyEngine {
        &self.engine
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Commands executed since start.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Checkpoints completed since start.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// The watermark of the last durable checkpoint, if any.
    pub fn stable_watermark(&self) -> Option<&Watermark> {
        self.stable.as_ref().map(|(w, _)| w)
    }

    /// The hosted engine's [`telemetry
    /// snapshot`](AmcastEngine::telemetry), with the replica's own
    /// lifecycle counters (`replica.executed`,
    /// `replica.checkpoints_taken`) folded in.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = self.engine.telemetry();
        snap.counters
            .insert("replica.executed".into(), self.executed);
        snap.counters
            .insert("replica.checkpoints_taken".into(), self.checkpoints_taken);
        snap
    }

    /// The hosted engine's [`health probe`](AmcastEngine::health)
    /// against `now`.
    pub fn health(&self, now: Time) -> HealthReport {
        self.engine.health(now)
    }

    /// The hosted engine's [`recovery
    /// counters`](AmcastEngine::recovery_counters).
    pub fn recovery_counters(&self) -> RecoveryCounters {
        self.engine.recovery_counters()
    }

    /// Diffs the engine's recovery counters against the last event's
    /// and logs every increase: a sequencer takeover, an orphan
    /// recovery, a truncated resync or a checkpoint install is an
    /// operational event worth a line, not a silent counter bump.
    fn report_recovery_transitions(&mut self) {
        let counters = self.engine.recovery_counters();
        if counters == self.last_recovery {
            return;
        }
        let prev = self.last_recovery;
        let me = self.engine.process_id();
        let engine = self.engine.engine_name();
        let transitions: [(&str, u64, u64); 6] = [
            (
                "resync truncation: stream re-anchored past a gap",
                prev.resync_truncations,
                counters.resync_truncations,
            ),
            (
                "orphan recovery started",
                prev.orphan_rounds_started,
                counters.orphan_rounds_started,
            ),
            (
                "orphan recovery completed",
                prev.orphan_rounds_completed,
                counters.orphan_rounds_completed,
            ),
            (
                "sequencer takeover",
                prev.sequencer_takeovers,
                counters.sequencer_takeovers,
            ),
            (
                "backfill round",
                prev.backfill_rounds,
                counters.backfill_rounds,
            ),
            (
                "checkpoint install",
                prev.checkpoint_installs,
                counters.checkpoint_installs,
            ),
        ];
        for (what, before, after) in transitions {
            if after > before {
                eprintln!(
                    "[{engine} {me}] {what} (+{}, total {after})",
                    after - before
                );
            }
        }
        self.last_recovery = counters;
    }

    fn take_checkpoint(&mut self, out: &mut Vec<Action>) {
        let watermark = self.engine.watermark();
        if self
            .stable
            .as_ref()
            .is_some_and(|(stable_w, _)| *stable_w == watermark)
        {
            return; // nothing new to checkpoint
        }
        if self.pending_ckpt.values().any(|(w, _)| *w == watermark) {
            // The same watermark is already on its way to disk (a slow
            // sync write can outlast the checkpoint interval): queueing
            // another full-snapshot write buys nothing.
            return;
        }
        let blob = pack_checkpoint(&self.engine.checkpoint_state(), &self.app.snapshot());
        self.ckpt_token_seed += 1;
        let token = PersistToken(self.ckpt_token_seed);
        self.pending_ckpt
            .insert(token, (watermark.clone(), blob.clone()));
        out.push(Action::Persist {
            record: PersistRecord::Checkpoint {
                id: watermark,
                snapshot: blob,
            },
            sync: self.policy.sync,
            token,
        });
    }

    /// Executes deliveries against the application, turning them into
    /// client responses; passes every other action through.
    fn post_process(&mut self, actions: Vec<Action>, out: &mut Vec<Action>) {
        for action in actions {
            match action {
                Action::Deliver {
                    group,
                    instance,
                    value,
                } => {
                    self.executed += 1;
                    let delivery = Delivery {
                        group,
                        instance,
                        value,
                    };
                    for Reply {
                        client,
                        request,
                        payload,
                    } in self.app.execute(&delivery)
                    {
                        out.push(Action::Respond {
                            client,
                            request,
                            payload,
                        });
                    }
                }
                other => out.push(other),
            }
        }
    }
}

impl<A: Application> StateMachine for EngineReplica<A> {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        match event {
            Event::Start => {
                if self.resume_pending {
                    self.resume_pending = false;
                    let actions = self.engine.resume(now);
                    self.post_process(actions, &mut out);
                }
                let actions = self.engine.on_event(now, Event::Start);
                self.post_process(actions, &mut out);
                if self.policy.interval_us > 0 {
                    out.push(Action::SetTimer {
                        after_us: self.policy.interval_us,
                        timer: TimerKind::CheckpointTick,
                    });
                }
            }
            Event::Timer(TimerKind::CheckpointTick) => {
                self.take_checkpoint(&mut out);
                if self.policy.interval_us > 0 {
                    out.push(Action::SetTimer {
                        after_us: self.policy.interval_us,
                        timer: TimerKind::CheckpointTick,
                    });
                }
            }
            Event::PersistDone(token) if self.pending_ckpt.contains_key(&token) => {
                let (watermark, blob) = self
                    .pending_ckpt
                    .remove(&token)
                    .expect("checked contains_key");
                self.checkpoints_taken += 1;
                self.responder.set_stable(watermark.clone());
                self.stable = Some((watermark.clone(), blob));
                let actions = self.engine.trim(now, &watermark);
                self.post_process(actions, &mut out);
            }
            Event::Message { from, msg } => match msg {
                Message::TrimQuery { group, seq } => {
                    out.push(Action::Send {
                        to: from,
                        msg: Message::TrimReply {
                            group,
                            seq,
                            safe: self.responder.safe_instance(group),
                        },
                    });
                }
                Message::CheckpointQuery { seq } => {
                    out.push(Action::Send {
                        to: from,
                        msg: Message::CheckpointInfo {
                            seq,
                            checkpoint: self.stable.as_ref().map(|(w, _)| w.clone()),
                        },
                    });
                }
                Message::CheckpointFetch { seq, id } => {
                    // Serve the raw application-snapshot half only: a
                    // recovering full `Replica` peer installs
                    // `CheckpointData` straight into `app.restore`, so
                    // it must never see this replica's private
                    // engine-state framing.
                    let snapshot = self
                        .stable
                        .as_ref()
                        .filter(|(stable_w, _)| *stable_w == id)
                        .and_then(|(_, blob)| unpack_checkpoint(blob))
                        .map(|(_, app_snapshot)| app_snapshot);
                    out.push(Action::Send {
                        to: from,
                        msg: Message::CheckpointData { seq, id, snapshot },
                    });
                }
                msg => {
                    let actions = self.engine.on_event(now, Event::Message { from, msg });
                    self.post_process(actions, &mut out);
                }
            },
            event => {
                let actions = self.engine.on_event(now, event);
                self.post_process(actions, &mut out);
            }
        }
        self.report_recovery_transitions();
        out
    }

    fn process_id(&self) -> ProcessId {
        self.engine.process_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::app::decode_command;
    use multiring_paxos::config::{single_ring, RingTuning};
    use multiring_paxos::event::Message;
    use multiring_paxos::types::{ClientId, GroupId, InstanceId};

    /// Echoes every command back to its client.
    #[derive(Default, Debug)]
    struct Echo {
        log: Vec<u8>,
    }

    impl Application for Echo {
        fn execute(&mut self, delivery: &Delivery) -> Vec<Reply> {
            let Some((client, request, cmd)) = decode_command(delivery.value.payload.clone())
            else {
                return Vec::new();
            };
            self.log.extend_from_slice(&cmd);
            vec![Reply {
                client,
                request,
                payload: cmd,
            }]
        }

        fn snapshot(&self) -> Bytes {
            Bytes::from(self.log.clone())
        }

        fn restore(&mut self, snapshot: &Bytes) {
            self.log = snapshot.to_vec();
        }
    }

    fn config() -> ClusterConfig {
        single_ring(
            1,
            RingTuning {
                lambda: 0,
                ..RingTuning::default()
            },
        )
    }

    fn disabled() -> CheckpointPolicy {
        CheckpointPolicy {
            interval_us: 0,
            sync: true,
        }
    }

    fn request(payload: &'static [u8], request: u64) -> Event {
        Event::Message {
            from: ProcessId::new(9),
            msg: Message::Request {
                client: ClientId::new(7),
                request,
                groups: vec![GroupId::new(0)],
                payload: Bytes::from_static(payload),
            },
        }
    }

    #[test]
    fn singleton_replica_executes_and_responds_on_both_engines() {
        for kind in EngineKind::ALL {
            let mut r = EngineReplica::new(
                kind,
                ProcessId::new(0),
                config(),
                Echo::default(),
                disabled(),
            );
            r.on_event(Time::ZERO, Event::Start);
            let out = r.on_event(Time::ZERO, request(b"x", 3));
            let responds: Vec<&Action> = out
                .iter()
                .filter(|a| matches!(a, Action::Respond { .. }))
                .collect();
            assert_eq!(responds.len(), 1, "{kind}: one reply expected");
            assert_eq!(r.executed(), 1, "{kind}");
            assert_eq!(r.app().log, vec![b'x'], "{kind}");
        }
    }

    #[test]
    fn checkpoint_lifecycle_trim_reply_and_recovery_on_both_engines() {
        for kind in EngineKind::ALL {
            let policy = CheckpointPolicy {
                interval_us: 1_000,
                sync: true,
            };
            let mut r =
                EngineReplica::new(kind, ProcessId::new(0), config(), Echo::default(), policy);
            r.on_event(Time::ZERO, Event::Start);
            r.on_event(Time::ZERO, request(b"y", 1));
            // A second delivery pushes the first below the wbcast
            // boundary exclusion, so both engines' watermarks cover at
            // least one value. Then: checkpoint tick persists, the
            // completion makes it durable and lets the engine trim.
            r.on_event(Time::ZERO, request(b"z", 2));
            let out = r.on_event(
                Time::from_millis(1),
                Event::Timer(TimerKind::CheckpointTick),
            );
            let (token, blob) = out
                .iter()
                .find_map(|a| match a {
                    Action::Persist {
                        token,
                        sync,
                        record: PersistRecord::Checkpoint { snapshot, .. },
                    } => {
                        assert!(*sync, "{kind}");
                        Some((*token, snapshot.clone()))
                    }
                    _ => None,
                })
                .expect("checkpoint persisted");
            assert_eq!(r.checkpoints_taken(), 0, "{kind}");
            r.on_event(Time::from_millis(2), Event::PersistDone(token));
            assert_eq!(r.checkpoints_taken(), 1, "{kind}");
            let snap = r.telemetry();
            assert_eq!(snap.counter("replica.executed"), 2, "{kind}");
            assert_eq!(snap.counter("replica.checkpoints_taken"), 1, "{kind}");
            assert!(
                r.health(Time::from_millis(2)).is_healthy(),
                "{kind}: a settled singleton replica is healthy"
            );
            let watermark = r.stable_watermark().expect("stable").clone();
            assert!(
                watermark.mark_of(GroupId::new(0)).value() >= 1,
                "{kind}: the delivery is covered"
            );
            // Trim queries are answered from the durable watermark.
            let out = r.on_event(
                Time::from_millis(3),
                Event::Message {
                    from: ProcessId::new(2),
                    msg: Message::TrimQuery {
                        group: GroupId::new(0),
                        seq: 2,
                    },
                },
            );
            assert!(matches!(
                out[0],
                Action::Send { msg: Message::TrimReply { safe, .. }, .. }
                if safe > InstanceId::ZERO
            ));
            // An unchanged watermark produces no second persist.
            let out = r.on_event(
                Time::from_millis(4),
                Event::Timer(TimerKind::CheckpointTick),
            );
            assert!(
                out.iter().all(|a| !matches!(a, Action::Persist { .. })),
                "{kind}: unchanged state skips the checkpoint"
            );
            // Crash: rebuild from the persisted checkpoint. The restored
            // application already holds the executed command.
            let recovered = EngineReplica::recovering(
                kind,
                ProcessId::new(0),
                config(),
                Echo::default(),
                policy,
                BTreeMap::new(),
                Some((watermark.clone(), blob)),
            );
            assert_eq!(
                recovered.app().log,
                b"yz".to_vec(),
                "{kind}: snapshot restored"
            );
            assert_eq!(
                recovered.stable_watermark(),
                Some(&watermark),
                "{kind}: watermark reinstalled"
            );
        }
    }

    #[test]
    fn recovered_replica_does_not_reexecute_covered_commands() {
        // Singleton wbcast replica: deliver two commands, checkpoint,
        // crash, restart — the resync replay of the boundary value must
        // not re-execute anything the snapshot already contains.
        let policy = CheckpointPolicy {
            interval_us: 1_000,
            sync: true,
        };
        let kind = EngineKind::Wbcast;
        let mut r = EngineReplica::new(kind, ProcessId::new(0), config(), Echo::default(), policy);
        r.on_event(Time::ZERO, Event::Start);
        r.on_event(Time::ZERO, request(b"a", 1));
        r.on_event(Time::ZERO, request(b"b", 2));
        let out = r.on_event(
            Time::from_millis(1),
            Event::Timer(TimerKind::CheckpointTick),
        );
        let token = out
            .iter()
            .find_map(|a| match a {
                Action::Persist { token, .. } => Some(*token),
                _ => None,
            })
            .expect("checkpoint persisted");
        r.on_event(Time::from_millis(2), Event::PersistDone(token));
        let (watermark, blob) = (
            r.stable_watermark().unwrap().clone(),
            r.stable.as_ref().unwrap().1.clone(),
        );
        let mut recovered = EngineReplica::recovering(
            kind,
            ProcessId::new(0),
            config(),
            Echo::default(),
            policy,
            BTreeMap::new(),
            Some((watermark, blob)),
        );
        assert_eq!(recovered.app().log, b"ab".to_vec());
        // Start issues the resume request, but a recovering node does
        // not assume its statically-configured sequencer role: nothing
        // answers until the coordination service confirms it.
        recovered.on_event(Time::from_millis(3), Event::Start);
        assert_eq!(recovered.executed(), 0, "no covered command re-executes");
        assert_eq!(recovered.app().log, b"ab".to_vec());
        // The coordination service re-confirms this process as the
        // ring's coordinator (runtimes deliver this right after the
        // restart's Start): it re-acquires the sequencer role and the
        // self-routed resync terminates, without re-executing anything
        // the snapshot already contains.
        recovered.on_event(
            Time::from_millis(4),
            Event::CoordinatorChange {
                ring: multiring_paxos::types::RingId::new(0),
                coordinator: ProcessId::new(0),
                supersedes: multiring_paxos::types::Ballot::ZERO,
            },
        );
        assert_eq!(recovered.executed(), 0, "no covered command re-executes");
        // New traffic flows again; the fresh sequencer holds releases
        // for its takeover grace window, which the next Δ tick past it
        // flushes.
        recovered.on_event(Time::from_millis(5), request(b"c", 3));
        recovered.on_event(
            Time::from_secs(2),
            Event::Timer(TimerKind::Delta(multiring_paxos::types::RingId::new(0))),
        );
        assert_eq!(recovered.app().log, b"abc".to_vec());
    }
}
