//! Engine-generic state-machine replication: couples any
//! [`AmcastEngine`] with an [`Application`], executing deliveries and
//! routing replies to client sessions.
//!
//! This is the engine-agnostic subset of
//! [`multiring_paxos::replica::Replica`]: services that need the full
//! checkpoint/trim/recovery machinery (which is white-box coupled to
//! the ring engine's merge watermarks) keep using `Replica`; services
//! that only need ordered execution over a selectable engine use this.

use crate::engine::{AmcastEngine, AnyEngine, EngineKind};
use multiring_paxos::app::{Application, Delivery, Reply};
use multiring_paxos::config::ClusterConfig;
use multiring_paxos::event::{Action, Event, StateMachine};
use multiring_paxos::types::{ProcessId, Time};
use std::fmt;

/// A replicated service endpoint over a configurable ordering engine.
pub struct EngineReplica<A> {
    engine: AnyEngine,
    app: A,
    executed: u64,
}

impl<A: fmt::Debug> fmt::Debug for EngineReplica<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineReplica")
            .field("engine", &self.engine.engine_name())
            .field("app", &self.app)
            .finish_non_exhaustive()
    }
}

impl<A: Application> EngineReplica<A> {
    /// A fresh replica running `app` over an engine of `kind`.
    pub fn new(kind: EngineKind, me: ProcessId, config: ClusterConfig, app: A) -> Self {
        Self {
            engine: kind.build(me, config),
            app,
            executed: 0,
        }
    }

    /// The ordering engine.
    pub fn engine(&self) -> &AnyEngine {
        &self.engine
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Commands executed since start.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Executes deliveries against the application, turning them into
    /// client responses; passes every other action through.
    fn post_process(&mut self, actions: Vec<Action>, out: &mut Vec<Action>) {
        for action in actions {
            match action {
                Action::Deliver {
                    group,
                    instance,
                    value,
                } => {
                    self.executed += 1;
                    let delivery = Delivery {
                        group,
                        instance,
                        value,
                    };
                    for Reply {
                        client,
                        request,
                        payload,
                    } in self.app.execute(&delivery)
                    {
                        out.push(Action::Respond {
                            client,
                            request,
                            payload,
                        });
                    }
                }
                other => out.push(other),
            }
        }
    }
}

impl<A: Application> StateMachine for EngineReplica<A> {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        let actions = self.engine.on_event(now, event);
        self.post_process(actions, &mut out);
        out
    }

    fn process_id(&self) -> ProcessId {
        self.engine.process_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use multiring_paxos::app::decode_command;
    use multiring_paxos::config::{single_ring, RingTuning};
    use multiring_paxos::event::Message;
    use multiring_paxos::types::{ClientId, GroupId};

    /// Echoes every command back to its client.
    #[derive(Default, Debug)]
    struct Echo {
        log: Vec<u8>,
    }

    impl Application for Echo {
        fn execute(&mut self, delivery: &Delivery) -> Vec<Reply> {
            let Some((client, request, cmd)) = decode_command(delivery.value.payload.clone())
            else {
                return Vec::new();
            };
            self.log.extend_from_slice(&cmd);
            vec![Reply {
                client,
                request,
                payload: cmd,
            }]
        }

        fn snapshot(&self) -> Bytes {
            Bytes::from(self.log.clone())
        }

        fn restore(&mut self, snapshot: &Bytes) {
            self.log = snapshot.to_vec();
        }
    }

    #[test]
    fn singleton_replica_executes_and_responds_on_both_engines() {
        for kind in EngineKind::ALL {
            let config = single_ring(
                1,
                RingTuning {
                    lambda: 0,
                    ..RingTuning::default()
                },
            );
            let mut r = EngineReplica::new(kind, ProcessId::new(0), config, Echo::default());
            r.on_event(Time::ZERO, Event::Start);
            let out = r.on_event(
                Time::ZERO,
                Event::Message {
                    from: ProcessId::new(9),
                    msg: Message::Request {
                        client: ClientId::new(7),
                        request: 3,
                        groups: vec![GroupId::new(0)],
                        payload: Bytes::from_static(b"x"),
                    },
                },
            );
            let responds: Vec<&Action> = out
                .iter()
                .filter(|a| matches!(a, Action::Respond { .. }))
                .collect();
            assert_eq!(responds.len(), 1, "{kind}: one reply expected");
            assert_eq!(r.executed(), 1, "{kind}");
            assert_eq!(r.app().log, vec![b'x'], "{kind}");
        }
    }
}
