//! The [`AmcastEngine`] trait, the [`EngineKind`] selector, and the
//! [`AnyEngine`] enum that lets runtimes host either engine behind one
//! concrete type.

use crate::wbcast::WbcastNode;
use bytes::Bytes;
use multiring_paxos::config::ClusterConfig;
use multiring_paxos::event::{Action, Event, StateMachine};
use multiring_paxos::node::{MulticastError, Node};
use multiring_paxos::types::{GroupId, ProcessId, Time, ValueId};
use std::fmt;
use std::str::FromStr;

/// A sans-io atomic-multicast ordering engine.
///
/// Beyond the [`StateMachine`] contract (events in, actions out), an
/// engine accepts local submissions and reports its identity. All
/// engines must provide agreement, validity and acyclic order for the
/// values they deliver via [`Action::Deliver`].
pub trait AmcastEngine: StateMachine {
    /// Atomically multicasts `payload` to the group set `groups` from
    /// this process (the paper's `multicast(γ, m)`), returning the
    /// assigned value id and the actions to execute.
    ///
    /// Every correct subscriber of every addressed group delivers the
    /// message exactly once, in a position consistent with one global
    /// acyclic order. A *genuine* engine (see [`EngineKind::genuine`])
    /// involves only the addressed groups' processes; the ring engine
    /// instead routes multi-group messages through a covering group.
    ///
    /// # Errors
    ///
    /// Fails if the set is empty, a group is unknown in the
    /// configuration, this process may not propose to it, or (ring
    /// engine only) no covering group exists for a multi-group set.
    fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError>;

    /// A short, stable engine name (for metrics and reports).
    fn engine_name(&self) -> &'static str;

    /// Values submitted locally and not yet known to be ordered
    /// (backpressure signal; engines without tracking return 0).
    fn backlog(&self) -> usize {
        0
    }
}

impl AmcastEngine for Node {
    fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        Node::multicast(self, now, groups, payload)
    }

    fn engine_name(&self) -> &'static str {
        "multiring"
    }

    fn backlog(&self) -> usize {
        self.proposer_backlog()
    }
}

/// Which atomic-multicast engine a deployment runs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum EngineKind {
    /// Multi-Ring Paxos: one Ring Paxos instance per group,
    /// deterministic merge at the learners (the paper's protocol).
    #[default]
    MultiRing,
    /// Timestamp-based Skeen/white-box multicast: per-group sequencer
    /// timestamps, delivery in global `(timestamp, group)` order.
    Wbcast,
}

impl EngineKind {
    /// Every selectable engine, for parameterized tests and benches.
    pub const ALL: [EngineKind; 2] = [EngineKind::MultiRing, EngineKind::Wbcast];

    /// The engine's short name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::MultiRing => "multiring",
            EngineKind::Wbcast => "wbcast",
        }
    }

    /// Whether multi-group messages are *genuine* (only the addressed
    /// groups' processes do protocol work for them). The ring engine
    /// instead routes `multicast(γ, m)` with `|γ| > 1` through a
    /// covering group — typically a deployment's global ring — whose
    /// whole subscriber set participates.
    pub fn genuine(self) -> bool {
        match self {
            EngineKind::MultiRing => false,
            EngineKind::Wbcast => true,
        }
    }

    /// Reads the engine from the `MRP_ENGINE` environment variable
    /// (case-insensitive, e.g. `multiring` | `wbcast`), defaulting to
    /// [`EngineKind::MultiRing`] when unset. Deployment helpers use this
    /// so benches and examples switch engines without recompiling.
    ///
    /// # Panics
    ///
    /// Panics when `MRP_ENGINE` is set to an unknown engine name, so a
    /// typo fails loudly instead of silently benchmarking the default.
    pub fn from_env() -> EngineKind {
        match std::env::var("MRP_ENGINE") {
            Ok(name) => name
                .parse()
                .unwrap_or_else(|e| panic!("invalid MRP_ENGINE: {e}")),
            Err(_) => EngineKind::default(),
        }
    }

    /// Builds an engine of this kind for process `me` over `config`.
    ///
    /// Both engines consume the same [`ClusterConfig`]: groups, the
    /// group→ring mapping (wbcast treats each ring as a replica set
    /// whose coordinator is the group's sequencer), roles and learner
    /// subscriptions.
    pub fn build(self, me: ProcessId, config: ClusterConfig) -> AnyEngine {
        match self {
            EngineKind::MultiRing => AnyEngine::MultiRing(Node::new(me, config)),
            EngineKind::Wbcast => AnyEngine::Wbcast(WbcastNode::new(me, config)),
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "multiring" | "multi-ring" | "mrp" => Ok(EngineKind::MultiRing),
            "wbcast" | "skeen" | "timestamp" => Ok(EngineKind::Wbcast),
            other => Err(format!("unknown engine kind {other:?}")),
        }
    }
}

/// A concrete either-engine type, so runtimes and services can host an
/// engine chosen at configuration time without trait objects.
#[derive(Debug)]
pub enum AnyEngine {
    /// The Multi-Ring Paxos engine.
    MultiRing(Node),
    /// The timestamp-based white-box engine.
    Wbcast(WbcastNode),
}

impl AnyEngine {
    /// Which kind this engine is.
    pub fn kind(&self) -> EngineKind {
        match self {
            AnyEngine::MultiRing(_) => EngineKind::MultiRing,
            AnyEngine::Wbcast(_) => EngineKind::Wbcast,
        }
    }

    /// The inner Multi-Ring Paxos node, if that is the engine.
    pub fn as_multiring(&self) -> Option<&Node> {
        match self {
            AnyEngine::MultiRing(n) => Some(n),
            AnyEngine::Wbcast(_) => None,
        }
    }

    /// The inner white-box node, if that is the engine.
    pub fn as_wbcast(&self) -> Option<&WbcastNode> {
        match self {
            AnyEngine::MultiRing(_) => None,
            AnyEngine::Wbcast(n) => Some(n),
        }
    }
}

impl StateMachine for AnyEngine {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        match self {
            AnyEngine::MultiRing(n) => n.on_event(now, event),
            AnyEngine::Wbcast(n) => n.on_event(now, event),
        }
    }

    fn process_id(&self) -> ProcessId {
        match self {
            AnyEngine::MultiRing(n) => n.process_id(),
            AnyEngine::Wbcast(n) => n.process_id(),
        }
    }
}

impl AmcastEngine for AnyEngine {
    fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        match self {
            AnyEngine::MultiRing(n) => AmcastEngine::multicast(n, now, groups, payload),
            AnyEngine::Wbcast(n) => AmcastEngine::multicast(n, now, groups, payload),
        }
    }

    fn engine_name(&self) -> &'static str {
        self.kind().name()
    }

    fn backlog(&self) -> usize {
        match self {
            AnyEngine::MultiRing(n) => AmcastEngine::backlog(n),
            AnyEngine::Wbcast(n) => AmcastEngine::backlog(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::config::{single_ring, RingTuning};

    #[test]
    fn kind_parse_and_display() {
        assert_eq!(
            "multiring".parse::<EngineKind>().unwrap(),
            EngineKind::MultiRing
        );
        assert_eq!("skeen".parse::<EngineKind>().unwrap(), EngineKind::Wbcast);
        assert!("zab".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::Wbcast.to_string(), "wbcast");
    }

    #[test]
    fn kind_parse_is_case_insensitive() {
        for (s, kind) in [
            ("MultiRing", EngineKind::MultiRing),
            ("MULTI-RING", EngineKind::MultiRing),
            ("  WbCast ", EngineKind::Wbcast),
            ("SKEEN", EngineKind::Wbcast),
        ] {
            assert_eq!(s.parse::<EngineKind>().unwrap(), kind, "{s:?}");
        }
    }

    #[test]
    fn genuineness_flag() {
        assert!(!EngineKind::MultiRing.genuine());
        assert!(EngineKind::Wbcast.genuine());
    }

    #[test]
    fn build_produces_matching_engine() {
        let config = single_ring(3, RingTuning::default());
        for kind in EngineKind::ALL {
            let engine = kind.build(ProcessId::new(0), config.clone());
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.engine_name(), kind.name());
            assert_eq!(engine.process_id(), ProcessId::new(0));
        }
    }
}
