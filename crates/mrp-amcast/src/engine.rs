//! The [`AmcastEngine`] trait, the [`EngineKind`] selector, and the
//! [`AnyEngine`] wrapper that lets runtimes host either engine behind
//! one concrete type — with optional submission-edge batching and
//! outgoing-frame coalescing layered on top (see [`BatchConfig`]).

use crate::batcher::{BatchConfig, Batcher, PushOutcome};
use crate::telemetry::{
    HealthIssue, HealthReport, Histogram, ProtocolEvent, RecoveryCounters, TelemetrySnapshot,
    STALL_DELTAS,
};
use crate::wbcast::WbcastNode;
use bytes::Bytes;
use multiring_paxos::app::encode_command;
use multiring_paxos::config::ClusterConfig;
use multiring_paxos::event::{Action, Event, Message, StateMachine, TimerKind};
use multiring_paxos::node::{MulticastError, Node};
use multiring_paxos::paxos::AcceptorRecovery;
use multiring_paxos::types::{GroupId, ProcessId, RingId, Time, ValueId};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// The engine-generic **delivery watermark**: for every subscribed
/// group, a position in that group's delivery stream such that every
/// value at or below it has been delivered (and executed) locally, and
/// no value at or below it will ever be delivered again.
///
/// The unit of a mark is engine-specific — the ring engine reports the
/// consensus *instance* of the group's ring, the white-box engine the
/// final *timestamp* of the group's sequencer stream — but the contract
/// is shared: a watermark plus an application snapshot taken at the same
/// instant form a **checkpoint**, and [`AmcastEngine::trim`] lets the
/// engine discard protocol state (dedup records, retained history,
/// acceptor log entries) below a durable watermark.
///
/// Structurally this is the ring engine's checkpoint identifier
/// ([`CheckpointId`](multiring_paxos::recovery::CheckpointId)): per-group
/// marks plus the deterministic-merge cursor, which only the ring engine
/// uses (other engines leave it zero). Reusing the type keeps watermarks
/// storable through the existing
/// [`PersistRecord::Checkpoint`](multiring_paxos::event::PersistRecord)
/// record and comparable with the coordinated trim protocol.
pub use multiring_paxos::recovery::CheckpointId as Watermark;

/// A sans-io atomic-multicast ordering engine.
///
/// Beyond the [`StateMachine`] contract (events in, actions out), an
/// engine accepts local submissions and reports its identity. All
/// engines must provide agreement, validity and acyclic order for the
/// values they deliver via [`Action::Deliver`].
pub trait AmcastEngine: StateMachine {
    /// Atomically multicasts `payload` to the group set `groups` from
    /// this process (the paper's `multicast(γ, m)`), returning the
    /// assigned value id and the actions to execute.
    ///
    /// Every correct subscriber of every addressed group delivers the
    /// message exactly once, in a position consistent with one global
    /// acyclic order. A *genuine* engine (see [`EngineKind::genuine`])
    /// involves only the addressed groups' processes; the ring engine
    /// instead routes multi-group messages through a covering group.
    ///
    /// # Errors
    ///
    /// Fails if the set is empty, a group is unknown in the
    /// configuration, this process may not propose to it, or (ring
    /// engine only) no covering group exists for a multi-group set.
    fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError>;

    /// Atomically multicasts a batch of payloads, all addressed to the
    /// same group set, in one submission — the batched form of
    /// [`multicast`](Self::multicast) the submission-edge [`Batcher`]
    /// flushes into.
    ///
    /// Engines override this when one round (one consensus instance,
    /// one sequencer exchange) can carry the whole batch; the default
    /// simply loops [`multicast`](Self::multicast), so an engine
    /// without an override behaves exactly as if each value had been
    /// submitted individually. Per-value semantics are identical either
    /// way: each payload gets its own [`ValueId`] (returned in payload
    /// order) and is delivered individually via [`Action::Deliver`],
    /// exactly once, in a position consistent with the engine's global
    /// acyclic order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`multicast`](Self::multicast). With the
    /// default implementation, payloads before the failing one have
    /// already been submitted.
    fn multicast_batch(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payloads: Vec<Bytes>,
    ) -> Result<(Vec<ValueId>, Vec<Action>), MulticastError> {
        let mut ids = Vec::with_capacity(payloads.len());
        let mut actions = Vec::new();
        for payload in payloads {
            let (id, acts) = self.multicast(now, groups, payload)?;
            ids.push(id);
            actions.extend(acts);
        }
        Ok((ids, actions))
    }

    /// A short, stable engine name (for metrics and reports).
    fn engine_name(&self) -> &'static str;

    /// Values submitted locally and not yet known to be ordered
    /// (backpressure signal; engines without tracking return 0).
    fn backlog(&self) -> usize {
        0
    }

    /// An FNV-1a fingerprint of the engine's protocol-relevant state —
    /// a canonical serialization of everything that influences future
    /// protocol behavior, with telemetry, latency samples and pure
    /// progress counters excluded. The model checker (`mrp-check`)
    /// prunes its interleaving search on it: two schedules whose
    /// commuting steps reach the same protocol state must fingerprint
    /// identically, and states that differ in any way that matters must
    /// (collisions aside) fingerprint differently. See
    /// [`multiring_paxos::digest`].
    fn state_digest(&self) -> u64;

    // --- the observability surface ---------------------------------

    /// A point-in-time snapshot of the engine's telemetry: phase-level
    /// counters and latency histograms recorded on the protocol hot
    /// paths, gauges computed from live state (backlogs, lags, epochs),
    /// and the retained [`ProtocolEvent`] trace window. Engines that
    /// record nothing return an empty snapshot.
    fn telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::empty(self.engine_name())
    }

    /// The health/stall probe, evaluated against `now`: flags rounds
    /// pending longer than [`STALL_DELTAS`]·Δ, frozen checkpoint prune
    /// floors, and deliveries held behind a recovery — the conditions
    /// that otherwise only surface as a timed-out test. Pure
    /// inspection: no state changes, safe at any frequency.
    fn health(&self, now: Time) -> HealthReport {
        HealthReport::healthy(now)
    }

    /// Monotonic recovery-outcome counters (truncations, orphan
    /// rounds, takeovers), cheap enough to read after every event:
    /// [`EngineReplica`](crate::EngineReplica) diffs consecutive
    /// readings to log recovery actions as they happen.
    fn recovery_counters(&self) -> RecoveryCounters {
        RecoveryCounters::default()
    }

    // --- the checkpoint/trim surface -------------------------------
    //
    // A replica checkpoints by snapshotting its application at the
    // engine's current `watermark()` (plus the engine's own
    // `checkpoint_state()`), persisting all three together. Once the
    // checkpoint is durable it calls `trim(watermark)` so the engine
    // can discard protocol state below it; after a crash it rebuilds
    // the engine, calls `install_checkpoint(watermark, state)` with the
    // restored blob, and `resume(now)` on the first `Event::Start` to
    // re-fetch everything the checkpoint does not cover.

    /// The engine's current delivery watermark: the stable prefix of
    /// its per-group delivery streams (see [`Watermark`]).
    ///
    /// Everything at or below the returned marks has been delivered to
    /// this process exactly once and is reflected in any application
    /// state snapshot taken in the same instant; nothing at or below
    /// them will be delivered again. Engines with no checkpoint support
    /// report an empty watermark.
    fn watermark(&self) -> Watermark {
        Watermark::default()
    }

    /// Engine-private recovery state to store *inside* a checkpoint,
    /// alongside the application snapshot (e.g. the white-box engine's
    /// residual delivered-id dedup records above the watermark, which
    /// make recovery exact when several values share a timestamp).
    /// Engines without such state return an empty buffer.
    fn checkpoint_state(&self) -> Bytes {
        Bytes::new()
    }

    /// Restores a freshly built engine from a durable checkpoint:
    /// `watermark` is the checkpoint's delivery watermark and `state`
    /// the blob a previous incarnation returned from
    /// [`checkpoint_state`](Self::checkpoint_state). Deliveries at or
    /// below the watermark are suppressed from now on (the restored
    /// application snapshot already contains them).
    fn install_checkpoint(&mut self, _watermark: &Watermark, _state: &Bytes) {}

    /// The checkpoint identified by `watermark` became durable: discard
    /// protocol state at or below it (dedup records, retained history)
    /// and notify whatever remote state the engine keeps per subscriber
    /// (the white-box engine reports the mark to each group's sequencer
    /// so it can prune its decided-id map and released-value history;
    /// the ring engine's acceptor logs are trimmed by the coordinated
    /// quorum protocol instead, fed by the replica's `TrimQuery`
    /// answers). Returns the actions to execute.
    fn trim(&mut self, _now: Time, _watermark: &Watermark) -> Vec<Action> {
        Vec::new()
    }

    /// Called once on the first `Event::Start` after a crash-restart,
    /// after [`install_checkpoint`](Self::install_checkpoint): returns
    /// the actions that re-fetch the deliveries between the restored
    /// watermark and the live streams (ring engine: instance backfill
    /// from the acceptors; white-box engine: a `Resync` request to each
    /// subscribed group's sequencer, answered from its retained
    /// released-value history).
    fn resume(&mut self, _now: Time) -> Vec<Action> {
        Vec::new()
    }
}

/// Instances per ring requested in one backfill batch when a ring-engine
/// replica resumes from a checkpoint (matches the full `Replica`'s
/// recovery chunking).
const RING_BACKFILL_CHUNK: u64 = 10_000;

impl AmcastEngine for Node {
    fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        Node::multicast(self, now, groups, payload)
    }

    /// One submission to the serving ring for the whole batch: the
    /// coordinator packs the values into as few consensus instances as
    /// `values_per_instance` / `bytes_per_instance` allow.
    fn multicast_batch(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payloads: Vec<Bytes>,
    ) -> Result<(Vec<ValueId>, Vec<Action>), MulticastError> {
        Node::multicast_many(self, now, groups, payloads)
    }

    fn engine_name(&self) -> &'static str {
        "multiring"
    }

    fn state_digest(&self) -> u64 {
        Node::state_digest(self)
    }

    fn backlog(&self) -> usize {
        self.proposer_backlog()
    }

    /// Snapshot of the node's plain-scalar [`stats`](Node::stats):
    /// submission/delivery counters and recovery activity as counters,
    /// backlog / merge progress / merge-watermark lag as gauges, the
    /// recent submit→deliver samples as the `ring_latency_us`
    /// histogram, and the retained recovery events as the trace.
    fn telemetry(&self) -> TelemetrySnapshot {
        let stats = self.stats();
        let mut snap = TelemetrySnapshot::empty("multiring");
        snap.counters.insert("proposed".into(), stats.proposed);
        snap.counters.insert("delivered".into(), stats.delivered);
        snap.counters
            .insert("backfill_rounds".into(), stats.backfill_rounds);
        snap.counters
            .insert("checkpoint_installs".into(), stats.checkpoint_installs);
        snap.gauges
            .insert("backlog".into(), self.proposer_backlog() as u64);
        snap.gauges
            .insert("merge_progress".into(), self.merge_progress());
        let wm = self.watermarks();
        let marks = wm.marks.iter().map(|&(_, i)| i.value());
        let lag = marks.clone().max().unwrap_or(0) - marks.min().unwrap_or(0);
        snap.gauges.insert("merge_watermark_lag".into(), lag);
        let mut lat = Histogram::new();
        for v in self.recent_latencies() {
            lat.record(v);
        }
        if lat.count() > 0 {
            snap.histograms.insert("ring_latency_us".into(), lat);
        }
        snap.events = self
            .recovery_events()
            .map(|(at, kind, detail)| ProtocolEvent {
                at,
                kind,
                group: None,
                detail,
            })
            .collect();
        snap
    }

    /// Flags a locally submitted value that the merge has not delivered
    /// back after [`STALL_DELTAS`]·Δ — undecided proposals and wedged
    /// merges both surface here (code `"stalled_round"`, detail: µs
    /// outstanding).
    fn health(&self, now: Time) -> HealthReport {
        let mut report = HealthReport::healthy(now);
        let threshold = STALL_DELTAS * self.max_delta_us().max(1);
        if let Some(oldest) = self.oldest_pending_submission() {
            let waited = now.since(oldest);
            if waited > threshold {
                report.issues.push(HealthIssue {
                    code: "stalled_round",
                    group: None,
                    detail: waited,
                });
            }
        }
        report
    }

    /// Backfills and checkpoint installs are the ring engine's recovery
    /// outcomes; it has no resyncs or orphan rounds.
    fn recovery_counters(&self) -> RecoveryCounters {
        let stats = self.stats();
        RecoveryCounters {
            backfill_rounds: stats.backfill_rounds,
            checkpoint_installs: stats.checkpoint_installs,
            ..RecoveryCounters::default()
        }
    }

    /// The deterministic merge's per-group instance watermarks plus the
    /// merge cursor — exactly the ring engine's checkpoint identifier.
    fn watermark(&self) -> Watermark {
        self.watermarks()
    }

    fn install_checkpoint(&mut self, watermark: &Watermark, _state: &Bytes) {
        self.install_watermarks(watermark);
    }

    /// Nothing engine-local to prune: learner state below the merge
    /// watermark is dropped as it is consumed, and the acceptor logs
    /// are trimmed by the coordinated quorum protocol (Predicate 2 of
    /// the paper), which the replica layer feeds by answering
    /// `TrimQuery` with its durable watermark.
    fn trim(&mut self, _now: Time, _watermark: &Watermark) -> Vec<Action> {
        Vec::new()
    }

    /// Backfills the instances between the installed watermark and the
    /// live rings from the acceptors.
    fn resume(&mut self, now: Time) -> Vec<Action> {
        self.request_backfill(now, RING_BACKFILL_CHUNK)
    }
}

/// Which atomic-multicast engine a deployment runs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum EngineKind {
    /// Multi-Ring Paxos: one Ring Paxos instance per group,
    /// deterministic merge at the learners (the paper's protocol).
    #[default]
    MultiRing,
    /// Timestamp-based Skeen/white-box multicast: per-group sequencer
    /// timestamps, delivery in global `(timestamp, group)` order.
    Wbcast,
}

impl EngineKind {
    /// Every selectable engine, for parameterized tests and benches.
    pub const ALL: [EngineKind; 2] = [EngineKind::MultiRing, EngineKind::Wbcast];

    /// The engine's short name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::MultiRing => "multiring",
            EngineKind::Wbcast => "wbcast",
        }
    }

    /// Whether multi-group messages are *genuine* (only the addressed
    /// groups' processes do protocol work for them). The ring engine
    /// instead routes `multicast(γ, m)` with `|γ| > 1` through a
    /// covering group — typically a deployment's global ring — whose
    /// whole subscriber set participates.
    pub fn genuine(self) -> bool {
        match self {
            EngineKind::MultiRing => false,
            EngineKind::Wbcast => true,
        }
    }

    /// Reads the engine from the `MRP_ENGINE` environment variable
    /// (case-insensitive, e.g. `multiring` | `wbcast`), defaulting to
    /// [`EngineKind::MultiRing`] when unset. Deployment helpers use this
    /// so benches and examples switch engines without recompiling.
    ///
    /// # Panics
    ///
    /// Panics when `MRP_ENGINE` is set to an unknown engine name, so a
    /// typo fails loudly instead of silently benchmarking the default.
    /// Callers that prefer to handle the error themselves (servers,
    /// long-running tools) use [`EngineKind::try_from_env`].
    pub fn from_env() -> EngineKind {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The non-panicking form of [`EngineKind::from_env`]: `Ok` with the
    /// selected engine (the default when `MRP_ENGINE` is unset), or a
    /// descriptive error naming the variable, the rejected value and the
    /// accepted spellings when it is set to something unparseable — so a
    /// deployment surfaces a configuration typo instead of silently
    /// running the wrong engine.
    pub fn try_from_env() -> Result<EngineKind, String> {
        match std::env::var("MRP_ENGINE") {
            Ok(name) => name.parse().map_err(|e| {
                format!(
                    "invalid MRP_ENGINE value {name:?}: {e} \
                     (expected one of: multiring | wbcast)"
                )
            }),
            Err(_) => Ok(EngineKind::default()),
        }
    }

    /// Builds an engine of this kind for process `me` over `config`.
    ///
    /// Both engines consume the same [`ClusterConfig`]: groups, the
    /// group→ring mapping (wbcast treats each ring as a replica set
    /// whose coordinator is the group's sequencer), roles and learner
    /// subscriptions.
    /// Submission batching is applied from the environment
    /// ([`BatchConfig::from_env`], the `MRP_BATCH*` knobs), so
    /// deployments switch it on without recompiling; it defaults off.
    pub fn build(self, me: ProcessId, config: ClusterConfig) -> AnyEngine {
        let inner = match self {
            EngineKind::MultiRing => EngineInner::MultiRing(Node::new(me, config)),
            EngineKind::Wbcast => EngineInner::Wbcast(WbcastNode::new(me, config)),
        };
        AnyEngine::with_env_batching(inner)
    }

    /// Builds an engine of this kind for a process restarting after a
    /// crash, restoring whatever per-ring stable state the engine keeps:
    /// the ring engine reloads its acceptor logs; the white-box engine
    /// (which keeps no stable protocol state of its own) starts fresh —
    /// with every sequencer role *relinquished* until the coordination
    /// service confirms it, since its pre-crash ordering state died with
    /// it — and relies on
    /// [`install_checkpoint`](AmcastEngine::install_checkpoint) /
    /// [`resume`](AmcastEngine::resume) to rejoin its streams.
    pub fn build_recovering(
        self,
        me: ProcessId,
        config: ClusterConfig,
        acceptor_logs: BTreeMap<RingId, AcceptorRecovery>,
    ) -> AnyEngine {
        let inner = match self {
            EngineKind::MultiRing => {
                EngineInner::MultiRing(Node::with_recovery(me, config, acceptor_logs))
            }
            EngineKind::Wbcast => EngineInner::Wbcast(WbcastNode::recovering(me, config)),
        };
        AnyEngine::with_env_batching(inner)
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "multiring" | "multi-ring" | "mrp" => Ok(EngineKind::MultiRing),
            "wbcast" | "skeen" | "timestamp" => Ok(EngineKind::Wbcast),
            other => Err(format!("unknown engine kind {other:?}")),
        }
    }
}

/// The inner either-engine dispatch: exactly the engine the deployment
/// selected, with no wrapper behavior.
#[derive(Debug)]
enum EngineInner {
    /// The Multi-Ring Paxos engine.
    MultiRing(Node),
    /// The timestamp-based white-box engine.
    Wbcast(WbcastNode),
}

impl EngineInner {
    fn kind(&self) -> EngineKind {
        match self {
            EngineInner::MultiRing(_) => EngineKind::MultiRing,
            EngineInner::Wbcast(_) => EngineKind::Wbcast,
        }
    }
}

impl StateMachine for EngineInner {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        match self {
            EngineInner::MultiRing(n) => n.on_event(now, event),
            EngineInner::Wbcast(n) => n.on_event(now, event),
        }
    }

    fn process_id(&self) -> ProcessId {
        match self {
            EngineInner::MultiRing(n) => n.process_id(),
            EngineInner::Wbcast(n) => n.process_id(),
        }
    }
}

impl AmcastEngine for EngineInner {
    fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::multicast(n, now, groups, payload),
            EngineInner::Wbcast(n) => AmcastEngine::multicast(n, now, groups, payload),
        }
    }

    fn multicast_batch(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payloads: Vec<Bytes>,
    ) -> Result<(Vec<ValueId>, Vec<Action>), MulticastError> {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::multicast_batch(n, now, groups, payloads),
            EngineInner::Wbcast(n) => AmcastEngine::multicast_batch(n, now, groups, payloads),
        }
    }

    fn engine_name(&self) -> &'static str {
        self.kind().name()
    }

    fn backlog(&self) -> usize {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::backlog(n),
            EngineInner::Wbcast(n) => AmcastEngine::backlog(n),
        }
    }

    fn state_digest(&self) -> u64 {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::state_digest(n),
            EngineInner::Wbcast(n) => AmcastEngine::state_digest(n),
        }
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::telemetry(n),
            EngineInner::Wbcast(n) => AmcastEngine::telemetry(n),
        }
    }

    fn health(&self, now: Time) -> HealthReport {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::health(n, now),
            EngineInner::Wbcast(n) => AmcastEngine::health(n, now),
        }
    }

    fn recovery_counters(&self) -> RecoveryCounters {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::recovery_counters(n),
            EngineInner::Wbcast(n) => AmcastEngine::recovery_counters(n),
        }
    }

    fn watermark(&self) -> Watermark {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::watermark(n),
            EngineInner::Wbcast(n) => AmcastEngine::watermark(n),
        }
    }

    fn checkpoint_state(&self) -> Bytes {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::checkpoint_state(n),
            EngineInner::Wbcast(n) => AmcastEngine::checkpoint_state(n),
        }
    }

    fn install_checkpoint(&mut self, watermark: &Watermark, state: &Bytes) {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::install_checkpoint(n, watermark, state),
            EngineInner::Wbcast(n) => AmcastEngine::install_checkpoint(n, watermark, state),
        }
    }

    fn trim(&mut self, now: Time, watermark: &Watermark) -> Vec<Action> {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::trim(n, now, watermark),
            EngineInner::Wbcast(n) => AmcastEngine::trim(n, now, watermark),
        }
    }

    fn resume(&mut self, now: Time) -> Vec<Action> {
        match self {
            EngineInner::MultiRing(n) => AmcastEngine::resume(n, now),
            EngineInner::Wbcast(n) => AmcastEngine::resume(n, now),
        }
    }
}

/// A concrete either-engine type, so runtimes and services can host an
/// engine chosen at configuration time without trait objects.
///
/// Beyond plain dispatch, the wrapper owns the hot-path throughput
/// machinery (off unless batching is enabled; see [`BatchConfig`]):
///
/// - **Submission-edge batching** — incoming client
///   [`Message::Request`]s are framed and queued per group set by a
///   [`Batcher`], then flushed into one
///   [`AmcastEngine::multicast_batch`] call when a size/byte budget
///   trips or the `SubmitFlush` window timer fires, so one engine round
///   carries many values.
/// - **Outgoing frame coalescing** — [`Message::Engine`] sends to the
///   same destination produced by one event are merged into a single
///   [`Message::Batch`] frame (both engines unpack batches natively),
///   which in particular makes a white-box sequencer's burst of
///   `Ordered` releases to one subscriber ride one frame.
///
/// With batching disabled (the default) every event is forwarded to the
/// inner engine verbatim and the wrapper is behaviorally invisible.
#[derive(Debug)]
pub struct AnyEngine {
    inner: EngineInner,
    batcher: Batcher,
    /// Batch flushes performed (one per γ-queue handed to the engine).
    batch_flushes: u64,
    /// Values submitted through batch flushes.
    batch_submitted: u64,
    /// Values-per-flush distribution.
    batch_occupancy: Histogram,
    /// Frames saved by outgoing coalescing (`n` merged sends count as
    /// `n - 1` saved frames).
    frames_coalesced: u64,
}

impl AnyEngine {
    fn new(inner: EngineInner) -> Self {
        Self {
            inner,
            batcher: Batcher::default(),
            batch_flushes: 0,
            batch_submitted: 0,
            batch_occupancy: Histogram::new(),
            frames_coalesced: 0,
        }
    }

    /// Wraps `inner` with batching read from the `MRP_BATCH*`
    /// environment knobs (off when unset).
    fn with_env_batching(inner: EngineInner) -> Self {
        let mut engine = Self::new(inner);
        engine.batcher.set_config(BatchConfig::from_env());
        engine
    }

    /// Which kind this engine is.
    pub fn kind(&self) -> EngineKind {
        self.inner.kind()
    }

    /// The inner Multi-Ring Paxos node, if that is the engine.
    pub fn as_multiring(&self) -> Option<&Node> {
        match &self.inner {
            EngineInner::MultiRing(n) => Some(n),
            EngineInner::Wbcast(_) => None,
        }
    }

    /// The inner white-box node, if that is the engine.
    pub fn as_wbcast(&self) -> Option<&WbcastNode> {
        match &self.inner {
            EngineInner::MultiRing(_) => None,
            EngineInner::Wbcast(n) => Some(n),
        }
    }

    /// The active batching configuration (`None` = off).
    pub fn batching(&self) -> Option<BatchConfig> {
        self.batcher.config()
    }

    /// Reconfigures submission batching directly (tests and benches;
    /// deployments use the `MRP_BATCH*` environment knobs through
    /// [`EngineKind::build`]). Values queued under the previous
    /// configuration are flushed immediately; the returned actions must
    /// be executed like any other engine output.
    pub fn set_batching(&mut self, now: Time, cfg: Option<BatchConfig>) -> Vec<Action> {
        let pending = self.batcher.set_config(cfg);
        let mut out = Vec::new();
        for (groups, payloads) in pending {
            self.submit_batch(now, &groups, payloads, &mut out);
        }
        self.coalesce_outgoing(&mut out);
        out
    }

    /// Submits one flushed batch to the inner engine. Errors mirror the
    /// unbatched `Request` path: the values are dropped and the clients
    /// time out and retry against a correct proposer.
    fn submit_batch(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payloads: Vec<Bytes>,
        out: &mut Vec<Action>,
    ) {
        self.batch_flushes += 1;
        self.batch_submitted += payloads.len() as u64;
        self.batch_occupancy.record(payloads.len() as u64);
        if let Ok((_, actions)) = self.inner.multicast_batch(now, groups, payloads) {
            out.extend(actions);
        }
    }

    /// Merges same-destination [`Message::Engine`] sends into one
    /// [`Message::Batch`] frame. Only engine frames are touched (other
    /// message kinds may be handled outside the engine's own dispatch,
    /// e.g. by the replica layer), and per-destination send order is
    /// preserved: the merged frame takes the position of the
    /// destination's last original send.
    fn coalesce_outgoing(&mut self, actions: &mut Vec<Action>) {
        let mut total: BTreeMap<ProcessId, usize> = BTreeMap::new();
        for a in actions.iter() {
            if let Action::Send {
                to,
                msg: Message::Engine { .. },
            } = a
            {
                *total.entry(*to).or_insert(0) += 1;
            }
        }
        if !total.values().any(|&n| n > 1) {
            return;
        }
        let mut left = total.clone();
        let mut grouped: BTreeMap<ProcessId, Vec<Message>> = BTreeMap::new();
        let old = std::mem::take(actions);
        for a in old {
            match a {
                Action::Send {
                    to,
                    msg: msg @ Message::Engine { .. },
                } if total[&to] > 1 => {
                    let queue = grouped.entry(to).or_default();
                    queue.push(msg);
                    let l = left.get_mut(&to).expect("counted above");
                    *l -= 1;
                    if *l == 0 {
                        let msgs = grouped.remove(&to).expect("just pushed");
                        self.frames_coalesced += msgs.len() as u64 - 1;
                        actions.push(Action::Send {
                            to,
                            msg: Message::Batch(msgs),
                        });
                    }
                }
                other => actions.push(other),
            }
        }
        // A destination whose counter never reached zero is impossible:
        // every counted send is consumed in this pass.
        debug_assert!(grouped.is_empty());
    }
}

impl StateMachine for AnyEngine {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        if !self.batcher.enabled() {
            return self.inner.on_event(now, event);
        }
        let mut out = Vec::new();
        match event {
            // The submission edge: queue instead of submitting, so
            // same-γ requests arriving close together share a round.
            Event::Message {
                msg:
                    Message::Request {
                        client,
                        request,
                        groups,
                        payload,
                    },
                ..
            } => {
                let framed = encode_command(client, request, &payload);
                match self.batcher.push(&groups, framed) {
                    PushOutcome::Flush(key, payloads) => {
                        self.submit_batch(now, &key, payloads, &mut out);
                    }
                    PushOutcome::ArmTimer(after_us) => out.push(Action::SetTimer {
                        after_us,
                        timer: TimerKind::SubmitFlush,
                    }),
                    PushOutcome::Queued => {}
                }
            }
            Event::Timer(TimerKind::SubmitFlush) => {
                for (groups, payloads) in self.batcher.drain() {
                    self.submit_batch(now, &groups, payloads, &mut out);
                }
            }
            other => out = self.inner.on_event(now, other),
        }
        self.coalesce_outgoing(&mut out);
        out
    }

    fn process_id(&self) -> ProcessId {
        self.inner.process_id()
    }
}

impl AmcastEngine for AnyEngine {
    fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        // Direct submissions need their ValueId synchronously, so they
        // bypass the queue; outgoing coalescing still applies.
        let (id, mut actions) = self.inner.multicast(now, groups, payload)?;
        if self.batcher.enabled() {
            self.coalesce_outgoing(&mut actions);
        }
        Ok((id, actions))
    }

    fn multicast_batch(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payloads: Vec<Bytes>,
    ) -> Result<(Vec<ValueId>, Vec<Action>), MulticastError> {
        let (ids, mut actions) = self.inner.multicast_batch(now, groups, payloads)?;
        if self.batcher.enabled() {
            self.coalesce_outgoing(&mut actions);
        }
        Ok((ids, actions))
    }

    fn engine_name(&self) -> &'static str {
        self.inner.engine_name()
    }

    fn backlog(&self) -> usize {
        self.inner.backlog() + self.batcher.pending()
    }

    /// The inner engine's snapshot, plus the wrapper's batching
    /// telemetry when batching has been active: `batch.flushes` /
    /// `batch.submitted_values` / `wire.frames_coalesced` counters and
    /// the `batch.occupancy` histogram (values per flush).
    /// The inner engine's fingerprint folded together with the
    /// submission-edge batcher's pending queues: a value parked in the
    /// batcher is protocol-relevant state the inner engine has not seen
    /// yet.
    fn state_digest(&self) -> u64 {
        use multiring_paxos::digest::Fnv1a;
        let mut h = Fnv1a::new();
        h.write_u64(self.inner.state_digest());
        self.batcher.digest_into(&mut h);
        h.finish()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = self.inner.telemetry();
        if self.batcher.enabled() || self.batch_flushes > 0 || self.frames_coalesced > 0 {
            snap.counters
                .insert("batch.flushes".into(), self.batch_flushes);
            snap.counters
                .insert("batch.submitted_values".into(), self.batch_submitted);
            snap.counters
                .insert("wire.frames_coalesced".into(), self.frames_coalesced);
            if self.batch_occupancy.count() > 0 {
                snap.histograms
                    .insert("batch.occupancy".into(), self.batch_occupancy.clone());
            }
        }
        snap
    }

    fn health(&self, now: Time) -> HealthReport {
        self.inner.health(now)
    }

    fn recovery_counters(&self) -> RecoveryCounters {
        self.inner.recovery_counters()
    }

    fn watermark(&self) -> Watermark {
        self.inner.watermark()
    }

    fn checkpoint_state(&self) -> Bytes {
        self.inner.checkpoint_state()
    }

    fn install_checkpoint(&mut self, watermark: &Watermark, state: &Bytes) {
        self.inner.install_checkpoint(watermark, state);
    }

    fn trim(&mut self, now: Time, watermark: &Watermark) -> Vec<Action> {
        self.inner.trim(now, watermark)
    }

    fn resume(&mut self, now: Time) -> Vec<Action> {
        self.inner.resume(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::config::{single_ring, RingTuning};

    #[test]
    fn kind_parse_and_display() {
        assert_eq!(
            "multiring".parse::<EngineKind>().unwrap(),
            EngineKind::MultiRing
        );
        assert_eq!("skeen".parse::<EngineKind>().unwrap(), EngineKind::Wbcast);
        assert!("zab".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::Wbcast.to_string(), "wbcast");
    }

    #[test]
    fn kind_parse_is_case_insensitive() {
        for (s, kind) in [
            ("MultiRing", EngineKind::MultiRing),
            ("MULTI-RING", EngineKind::MultiRing),
            ("  WbCast ", EngineKind::Wbcast),
            ("SKEEN", EngineKind::Wbcast),
        ] {
            assert_eq!(s.parse::<EngineKind>().unwrap(), kind, "{s:?}");
        }
    }

    #[test]
    fn genuineness_flag() {
        assert!(!EngineKind::MultiRing.genuine());
        assert!(EngineKind::Wbcast.genuine());
    }

    /// Satellite regression: an unparseable `MRP_ENGINE` value must
    /// surface a descriptive error (and `from_env` must panic with it),
    /// never silently fall back to the default engine. One test covers
    /// every case serially — the environment is process-global, so
    /// splitting these into parallel tests would race.
    #[test]
    fn env_selection_rejects_unknown_engine_names() {
        // `MRP_ENGINE` is only read by this test within this crate's
        // test binary, so mutating it here is safe.
        std::env::remove_var("MRP_ENGINE");
        assert_eq!(EngineKind::try_from_env(), Ok(EngineKind::default()));

        std::env::set_var("MRP_ENGINE", "WbCast");
        assert_eq!(EngineKind::try_from_env(), Ok(EngineKind::Wbcast));
        assert_eq!(EngineKind::from_env(), EngineKind::Wbcast);

        std::env::set_var("MRP_ENGINE", "zab");
        let err = EngineKind::try_from_env().unwrap_err();
        assert!(err.contains("MRP_ENGINE"), "names the variable: {err}");
        assert!(err.contains("zab"), "names the rejected value: {err}");
        assert!(err.contains("multiring"), "lists the options: {err}");
        let panic = std::panic::catch_unwind(EngineKind::from_env);
        assert!(panic.is_err(), "from_env must fail loudly on a typo");

        std::env::remove_var("MRP_ENGINE");
    }

    #[test]
    fn build_produces_matching_engine() {
        let config = single_ring(3, RingTuning::default());
        for kind in EngineKind::ALL {
            let engine = kind.build(ProcessId::new(0), config.clone());
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.engine_name(), kind.name());
            assert_eq!(engine.process_id(), ProcessId::new(0));
        }
    }

    /// The frame coalescer: a destination receiving several engine
    /// frames gets exactly one [`Message::Batch`] at its *last* send
    /// position; destinations with a single engine frame — and
    /// non-engine sends — pass through untouched. (Regression: the
    /// rebuild pass once guarded on the countdown it was decrementing,
    /// dropping every multi-send destination's last frame.)
    #[test]
    fn coalescer_merges_multi_sends_and_keeps_singles_verbatim() {
        let config = single_ring(3, RingTuning::default());
        let mut engine = EngineKind::Wbcast.build(ProcessId::new(0), config);
        let frame = |tag: u8| Message::Engine {
            engine: 1,
            payload: Bytes::from(vec![tag]),
        };
        let p1 = ProcessId::new(1);
        let p2 = ProcessId::new(2);
        let mut actions = vec![
            Action::Send {
                to: p1,
                msg: frame(0),
            },
            Action::Send {
                to: p2,
                msg: frame(1),
            },
            Action::Send {
                to: p1,
                msg: frame(2),
            },
        ];
        engine.coalesce_outgoing(&mut actions);
        assert_eq!(actions.len(), 2);
        // p2's single frame stays verbatim and keeps its place...
        assert!(matches!(
            &actions[0],
            Action::Send { to, msg: Message::Engine { .. } } if *to == p2
        ));
        // ...while p1's two frames ride one Batch at the last position,
        // in send order.
        match &actions[1] {
            Action::Send {
                to,
                msg: Message::Batch(msgs),
            } => {
                assert_eq!(*to, p1);
                let tags: Vec<u8> = msgs
                    .iter()
                    .map(|m| match m {
                        Message::Engine { payload, .. } => payload.as_slice()[0],
                        other => panic!("non-engine frame in batch: {other:?}"),
                    })
                    .collect();
                assert_eq!(tags, vec![0, 2]);
            }
            other => panic!("expected a coalesced batch: {other:?}"),
        }
        assert_eq!(engine.frames_coalesced, 1);
    }
}
