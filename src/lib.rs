//! # atomic-multicast
//!
//! Umbrella crate for the Multi-Ring Paxos atomic multicast stack — a
//! from-scratch Rust reproduction of *"Building global and scalable
//! systems with atomic multicast"* (Benz, Jalili Marandi, Pedone,
//! Garbinato — Middleware 2014).
//!
//! It re-exports the workspace crates under stable paths:
//!
//! * [`core`] — the sans-io Multi-Ring Paxos protocol
//!   (rings, deterministic merge, rate leveling, recovery).
//! * [`amcast`] — the pluggable atomic-multicast engine
//!   layer: the [`AmcastEngine`](mrp_amcast::AmcastEngine) trait every
//!   ordering engine implements, engine selection via
//!   [`EngineKind`](mrp_amcast::EngineKind), and a second, timestamp-
//!   based Skeen/white-box engine ([`wbcast`](mrp_amcast::wbcast)).
//! * [`sim`] — deterministic discrete-event simulator (WAN
//!   topologies, disk/CPU models, fault injection) used by tests and by
//!   the benchmark harness that regenerates the paper's figures.
//! * [`transport`] — wire codec and a real TCP runtime.
//! * [`storage`] — acceptor write-ahead logs and checkpoint
//!   storage.
//! * [`coord`] — coordination service (membership, ring
//!   configuration, coordinator election).
//! * [`store`] — MRP-Store, the partitioned strongly
//!   consistent key-value store of Section 6.1.
//! * [`dlog`] — dLog, the distributed shared log of
//!   Section 6.2.
//! * [`ycsb`] — YCSB-style workload generator.
//! * [`baselines`] — comparison systems used by the
//!   evaluation.
//!
//! ## The engine abstraction
//!
//! Everything above the ordering layer — the simulator's cluster,
//! MRP-Store, dLog, the benchmark harness — is written against
//! [`amcast::AmcastEngine`], the explicit
//! form of the paper's set-addressed `multicast(γ, m)`/`deliver(m)`
//! contract. Deployments pick an engine with
//! [`EngineKind`](mrp_amcast::EngineKind) (`MultiRing` is the paper's
//! protocol, routing multi-group messages through a covering/global
//! ring; `Wbcast` orders via per-group sequencer timestamps and handles
//! multi-group messages genuinely — only the addressed groups do
//! work); run
//! `cargo run --example engine_compare` to see both engines drive the
//! same workload, and `cargo bench -p mrp-bench --bench fig9_engines`
//! for the quantitative comparison. How to add a third engine is
//! documented in [`mrp_amcast`].
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! the repository `README.md` for the paper-figure reproductions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mrp_amcast as amcast;
pub use mrp_baselines as baselines;
pub use mrp_coord as coord;
pub use mrp_dlog as dlog;
pub use mrp_sim as sim;
pub use mrp_storage as storage;
pub use mrp_store as store;
pub use mrp_transport as transport;
pub use mrp_ycsb as ycsb;
pub use multiring_paxos as core;

/// Broadly useful items for building on the stack.
pub mod prelude {
    pub use multiring_paxos::prelude::*;
}
