//! Recovery example (Section 5): a replica is killed mid-run, its peers
//! keep serving, checkpoints let acceptors trim their logs, and the
//! restarted replica rebuilds its state from a remote checkpoint plus
//! retransmitted consensus instances.
//!
//! Run with: `cargo run --example recovery --release`

use atomic_multicast::core::config::{ClusterConfig, RingSpec, RingTuning, Roles};
use atomic_multicast::core::replica::{CheckpointPolicy, Replica};
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId, RingId, Time};
use atomic_multicast::sim::actor::Hosted;
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::disk::DiskModel;
use atomic_multicast::sim::net::Topology;
use atomic_multicast::storage::NodeStorage;
use atomic_multicast::store::command::StoreCommand;
use atomic_multicast::store::StoreApp;
use bytes::Bytes;
use mrp_bench::OpenLoopClient;

fn main() {
    type StoreReplica = Hosted<Replica<StoreApp>>;
    // One ring: three proposer/acceptors + three learner replicas.
    let tuning = RingTuning {
        lambda: 2_000,
        trim_interval_us: 3_000_000,
        ..RingTuning::default()
    };
    let mut spec = RingSpec::new(RingId::new(0)).tuning(tuning);
    for i in 0..3 {
        spec = spec.member(ProcessId::new(i), Roles::PROPOSER | Roles::ACCEPTOR);
    }
    for i in 3..6 {
        spec = spec.member(ProcessId::new(i), Roles::LEARNER);
    }
    let mut builder = ClusterConfig::builder()
        .ring(spec)
        .group(GroupId::new(0), RingId::new(0));
    for i in 3..6 {
        builder = builder.subscribe(ProcessId::new(i), GroupId::new(0));
    }
    let config = builder.build().expect("valid config");

    let mut cluster = Cluster::new(
        SimConfig {
            election_timeout_us: 300_000,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for i in 0..3 {
        let p = ProcessId::new(i);
        cluster.add_actor(
            p,
            Hosted::new(atomic_multicast::core::node::Node::new(p, config.clone())).boxed(),
        );
        cluster.add_disk(p, DiskModel::ssd());
    }
    let policy = CheckpointPolicy {
        interval_us: 3_000_000,
        sync: true,
    };
    for i in 3..6 {
        let p = ProcessId::new(i);
        let replica = Replica::new(p, config.clone(), StoreApp::new(0), policy);
        cluster.add_actor(p, Hosted::new(replica).boxed());
        cluster.add_disk(p, DiskModel::ssd());
        let cfg = config.clone();
        cluster.set_factory(
            p,
            Box::new(move |storage: &NodeStorage| {
                Hosted::new(Replica::recovering(
                    p,
                    cfg.clone(),
                    StoreApp::new(0),
                    policy,
                    storage.acceptor_recovery(),
                    storage.checkpoint_cloned(),
                ))
                .boxed()
            }),
        );
    }
    // Steady write load.
    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut k = 0u64;
    let client = OpenLoopClient::new(
        client_id,
        ProcessId::new(0),
        GroupId::new(0),
        1_000, // 1000 writes/s
        "load",
        move |_req| {
            k += 1;
            StoreCommand::Insert {
                key: Bytes::from(format!("key{:05}", k % 1000)),
                value: Bytes::from(vec![0x33u8; 64]),
            }
            .encode()
        },
    );
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);

    cluster.start();
    println!("t= 0s: cluster running, replica p4 will crash at t=3s");
    cluster.schedule_crash(Time::from_secs(3), ProcessId::new(4));
    cluster.schedule_restart(Time::from_secs(10), ProcessId::new(4));
    cluster.run_until(Time::from_secs(16));

    println!("t=16s: run finished");
    println!(
        "  acceptor log trims executed: {}",
        cluster.metrics().counter("trim_storage")
    );
    let mut lens = Vec::new();
    for i in 3..6 {
        let p = ProcessId::new(i);
        let r = cluster.actor_as::<StoreReplica>(p).expect("replica");
        println!(
            "  replica p{}: executed {:>5} commands, {:>4} keys, {} checkpoints{}",
            i,
            r.inner().executed(),
            r.inner().app().len(),
            r.inner().checkpoints_taken(),
            if i == 4 {
                "   <- crashed & recovered"
            } else {
                ""
            }
        );
        lens.push(r.inner().app().len());
    }
    assert_eq!(lens[0], lens[1]);
    assert_eq!(lens[1], lens[2], "recovered replica caught up");
    println!("the restarted replica installed a remote checkpoint and replayed the gap.");
}
