//! MRP-Store example: a three-partition strongly consistent key-value
//! store with a global ring, driven by a mixed workload including
//! cross-partition scans.
//!
//! Run with: `cargo run --example kv_store`

use atomic_multicast::core::config::RingTuning;
use atomic_multicast::core::replica::CheckpointPolicy;
use atomic_multicast::core::types::{ClientId, ProcessId, Time};
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::net::Topology;
use atomic_multicast::sim::rng::Rng;
use atomic_multicast::store::client::{ClientOp, StoreClient, StoreClientConfig};
use atomic_multicast::store::command::StoreCommand;
use atomic_multicast::store::{StoreApp, StoreDeployment, StoreTopology};
use bytes::Bytes;

fn main() {
    let tuning = RingTuning {
        lambda: 2_000,
        ..RingTuning::default()
    };
    let deployment = StoreDeployment::build(&StoreTopology::local(3, tuning));
    println!(
        "MRP-Store: {} partitions x 3 replicas, global ring = {:?}",
        deployment.replicas.len(),
        deployment.global_group
    );

    let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(16));
    let map = deployment.partition_map.clone();
    deployment.spawn_replicas(
        &mut cluster,
        CheckpointPolicy {
            interval_us: 0,
            sync: false,
        },
        move |partition| {
            let mut app = StoreApp::new(partition);
            // Preload a small database.
            for i in 0..300 {
                let key = format!("user{i:06}");
                if map.group_of(key.as_bytes()).value() == partition {
                    app.load(Bytes::from(key), Bytes::from(format!("value-{i}")));
                }
            }
            app
        },
    );

    // A client mixing reads, updates and cross-partition scans.
    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut op = 0u64;
    let gen = move |rng: &mut Rng| {
        op += 1;
        let k = rng.below(300);
        match op % 4 {
            0 => ClientOp::Single {
                cmd: StoreCommand::Scan {
                    from: Bytes::from(format!("user{k:06}")),
                    to: Bytes::from(format!("user{:06}", k + 10)),
                    limit: 10,
                },
                tag: "scan",
            },
            1 => ClientOp::Single {
                cmd: StoreCommand::Update {
                    key: Bytes::from(format!("user{k:06}")),
                    value: Bytes::from(format!("updated-{op}")),
                },
                tag: "update",
            },
            _ => ClientOp::Single {
                cmd: StoreCommand::Read {
                    key: Bytes::from(format!("user{k:06}")),
                },
                tag: "read",
            },
        }
    };
    let client = StoreClient::new(
        StoreClientConfig::new(client_id, 8),
        deployment.clone(),
        gen,
    );
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(5));

    let m = cluster.metrics();
    println!(
        "completed {} operations in 5 simulated seconds",
        m.counter("store/ops")
    );
    for tag in ["read", "update", "scan"] {
        if let Some(h) = m.histogram(&format!("store/latency_us/{tag}")) {
            println!(
                "  {tag:>6}: {} ops, mean latency {:.2} ms, p99 {:.2} ms",
                h.count(),
                h.mean() / 1000.0,
                h.quantile(0.99) as f64 / 1000.0
            );
        }
    }
    println!("scans were ordered against every single-partition write by the global ring.");
}
