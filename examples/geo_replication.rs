//! Geo-replication example: MRP-Store across four simulated EC2 regions
//! — one partition ring per region plus a global ring, exactly the
//! horizontal-scalability deployment of the paper's Section 8.4.2.
//!
//! Run with: `cargo run --example geo_replication --release`

use atomic_multicast::core::config::RingTuning;
use atomic_multicast::core::replica::CheckpointPolicy;
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId, Time};
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::net::{Region, Topology};
use atomic_multicast::sim::rng::Rng;
use atomic_multicast::store::client::{ClientOp, StoreClient, StoreClientConfig};
use atomic_multicast::store::command::StoreCommand;
use atomic_multicast::store::{StoreApp, StoreDeployment, StoreTopology};
use bytes::Bytes;

fn main() {
    let tuning = RingTuning::wide_area(); // M=1, Δ=20ms, λ=2000
    let topo = StoreTopology {
        partitions: 4,
        replicas_per_partition: 3,
        global_ring: true,
        tuning,
        global_tuning: tuning,
        engine: atomic_multicast::amcast::EngineKind::MultiRing,
    };
    let deployment = StoreDeployment::build(&topo);

    // Pin each partition and its client to a region.
    let regions = Region::all();
    let mut net = Topology::ec2_four_regions();
    for part in 0..4u16 {
        let site = regions[part as usize].site();
        for &p in &deployment.replicas[&part] {
            net.assign(p, site);
        }
        net.assign(ProcessId::new(900 + u32::from(part)), site);
    }

    let mut cluster = Cluster::new(SimConfig::default(), net);
    deployment.spawn_replicas(
        &mut cluster,
        CheckpointPolicy {
            interval_us: 0,
            sync: false,
        },
        StoreApp::new,
    );
    // One client per region, updating its local partition only.
    for part in 0..4u16 {
        let client_proc = ProcessId::new(900 + u32::from(part));
        let client_id = ClientId::new(1 + u64::from(part));
        let map = deployment.partition_map.clone();
        let keys: Vec<Bytes> = (0..100_000u64)
            .map(|i| Bytes::from(format!("key{i:09}")))
            .filter(|k| map.group_of(k).value() == part)
            .take(500)
            .collect();
        let mut n = 0usize;
        let gen = move |_r: &mut Rng| {
            n += 1;
            ClientOp::Single {
                cmd: StoreCommand::Insert {
                    key: keys[n % keys.len()].clone(),
                    value: Bytes::from(vec![0x11u8; 256]),
                },
                tag: "update",
            }
        };
        let mut cfg = StoreClientConfig::new(client_id, 10);
        cfg.metric_prefix = format!("region{part}");
        cfg.proposer_override
            .insert(GroupId::new(part), deployment.replicas[&part][0]);
        let client = StoreClient::new(cfg, deployment.clone(), gen);
        cluster.add_actor(client_proc, Box::new(client));
        cluster.register_client(client_id, client_proc);
    }
    cluster.start();
    cluster.run_until(Time::from_secs(20));

    println!("MRP-Store across 4 EC2 regions, 20 simulated seconds:");
    let names = ["us-west-2", "us-west-1", "us-east-1", "eu-west-1"];
    for part in 0..4 {
        let ops = cluster.metrics().counter(&format!("region{part}/ops"));
        let lat = cluster
            .metrics()
            .histogram(&format!("region{part}/latency_us"))
            .map_or(0.0, |h| h.mean() / 1000.0);
        println!(
            "  {:>10}: {:>6} local updates, mean latency {:>7.1} ms",
            names[part as usize], ops, lat
        );
    }
    println!("every region progressed at its own pace; the global ring only carried");
    println!("rate-leveling skips, so local throughput is independent of distance.");
}
