//! Real-deployment example: a three-node MRP-Store partition over
//! loopback TCP with durable write-ahead logs — the thread-per-peer
//! runtime a downstream user would actually run, no simulator involved.
//!
//! Run with: `cargo run --example tcp_cluster`

use atomic_multicast::core::config::{single_ring, RingTuning, StorageMode};
use atomic_multicast::core::replica::{CheckpointPolicy, Replica};
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId};
use atomic_multicast::store::command::{StoreCommand, StoreResponse};
use atomic_multicast::store::StoreApp;
use atomic_multicast::transport::tcp::{ClientPort, RuntimeConfig, TcpRuntime};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

fn free_addr() -> SocketAddr {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind")
        .local_addr()
        .expect("addr")
}

fn main() {
    let tuning = RingTuning {
        lambda: 0,
        storage: StorageMode::AsyncDisk,
        ..RingTuning::default()
    };
    let config = single_ring(3, tuning);
    let addrs: Vec<SocketAddr> = (0..4).map(|_| free_addr()).collect();
    let client_proc = ProcessId::new(50);
    let mut peers: BTreeMap<ProcessId, SocketAddr> = BTreeMap::new();
    for i in 0..3 {
        peers.insert(ProcessId::new(i), addrs[i as usize]);
    }
    peers.insert(client_proc, addrs[3]);

    let base = std::env::temp_dir().join(format!("mrp-example-{}", std::process::id()));
    let mut handles = Vec::new();
    for i in 0..3u32 {
        let p = ProcessId::new(i);
        let mut rc = RuntimeConfig::new(p, addrs[i as usize]);
        rc.peers = peers.clone();
        rc.clients = BTreeMap::from([(ClientId::new(1), client_proc)]);
        rc.storage_dir = Some(base.join(format!("node{i}")));
        let replica = Replica::new(
            p,
            config.clone(),
            StoreApp::new(0),
            CheckpointPolicy {
                interval_us: 0,
                sync: false,
            },
        );
        handles.push(TcpRuntime::spawn(rc, replica).expect("spawn node"));
    }
    let client = ClientPort::bind(client_proc, addrs[3], peers.clone()).expect("client");

    println!("3 nodes listening on loopback TCP; inserting 10 entries...");
    for i in 0..10u64 {
        let cmd = StoreCommand::Insert {
            key: Bytes::from(format!("key{i}")),
            value: Bytes::from(format!("value{i}")),
        };
        client.request(
            ProcessId::new(0),
            ClientId::new(1),
            i,
            vec![GroupId::new(0)],
            cmd.encode(),
        );
    }
    // Collect first responses (each of the 3 replicas answers; we count
    // unique request ids).
    let mut seen = std::collections::BTreeSet::new();
    while seen.len() < 10 {
        let (_, request, _) = client
            .responses()
            .recv_timeout(Duration::from_secs(10))
            .expect("response");
        seen.insert(request);
    }
    println!("all inserts acknowledged; reading one back...");
    let cmd = StoreCommand::Read {
        key: Bytes::from_static(b"key7"),
    };
    client.request(
        ProcessId::new(1),
        ClientId::new(1),
        100,
        vec![GroupId::new(0)],
        cmd.encode(),
    );
    let value = loop {
        let (_, request, payload) = client
            .responses()
            .recv_timeout(Duration::from_secs(10))
            .expect("read response");
        if request == 100 {
            let (_, resp) = StoreApp::unframe_response(&payload).expect("framed");
            break resp;
        }
    };
    println!("read(key7) -> {value:?}");
    assert_eq!(
        value,
        StoreResponse::Value(Some(Bytes::from_static(b"value7")))
    );
    for h in handles {
        h.shutdown();
    }
    let _ = std::fs::remove_dir_all(&base);
    println!("done — write-ahead logs lived in {}", base.display());
}
