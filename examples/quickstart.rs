//! Quickstart: a three-process Multi-Ring Paxos ring on the
//! deterministic simulator. Three clients multicast values to one group
//! and every learner delivers them in the same total order.
//!
//! Run with: `cargo run --example quickstart`

use atomic_multicast::core::config::{single_ring, RingTuning};
use atomic_multicast::core::node::Node;
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId, Time};
use atomic_multicast::sim::actor::{Actor, ActorCtx, ActorEvent, Hosted, Outbox};
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::net::Topology;
use bytes::Bytes;
use multiring_paxos::event::Message;
use std::any::Any;

/// A tiny client that fires a burst of requests at a proposer.
#[derive(Debug)]
struct Burst {
    target: ProcessId,
    client: ClientId,
    n: u64,
}

impl Actor for Burst {
    fn on_event(&mut self, _now: Time, ev: ActorEvent, out: &mut Outbox, _ctx: &mut ActorCtx<'_>) {
        if ev == ActorEvent::Start {
            for i in 0..self.n {
                out.send(
                    self.target,
                    Message::Request {
                        client: self.client,
                        request: i,
                        groups: vec![GroupId::new(0)],
                        payload: Bytes::from(format!("client{}-msg{}", self.client.value(), i)),
                    },
                );
            }
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    // One ring, three processes, all of them proposer+acceptor+learner.
    let config = single_ring(
        3,
        RingTuning {
            lambda: 0,
            ..RingTuning::default()
        },
    );
    let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(8));
    cluster.set_protocol(config.clone());
    for i in 0..3 {
        let p = ProcessId::new(i);
        cluster.add_actor(p, Hosted::new(Node::new(p, config.clone())).boxed());
    }
    // Three independent clients, each sending to a different proposer.
    for c in 0..3u32 {
        let client_proc = ProcessId::new(100 + c);
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(c),
                client: ClientId::new(u64::from(c)),
                n: 3,
            }),
        );
        cluster.register_client(ClientId::new(u64::from(c)), client_proc);
    }
    cluster.start();
    cluster.run_until(Time::from_secs(2));

    println!(
        "delivered {} values across 3 learners in {:.1} simulated seconds",
        cluster.metrics().counter("delivered_values"),
        cluster.now().as_secs_f64()
    );
    // Every learner consumed the same merge positions.
    for i in 0..3 {
        let node = cluster
            .actor_as::<Hosted<Node>>(ProcessId::new(i))
            .expect("node");
        println!(
            "  learner {}: merge watermark = {}",
            i,
            node.inner().watermarks()
        );
    }
    assert_eq!(cluster.metrics().counter("delivered_values"), 27); // 9 values × 3 learners
    println!("all learners agree — atomic multicast order is total.");
}
