//! dLog example: two logs plus a common ring; concurrent appenders and
//! atomic multi-appends; all three servers agree on every position.
//!
//! Run with: `cargo run --example distributed_log`

use atomic_multicast::amcast::EngineReplica;
use atomic_multicast::core::app::Application;
use atomic_multicast::core::config::RingTuning;
use atomic_multicast::core::replica::{CheckpointPolicy, Replica};
use atomic_multicast::core::types::{ClientId, ProcessId, Time};
use atomic_multicast::dlog::{DLogApp, DLogClient, DLogClientConfig, DLogDeployment, DLogTopology};
use atomic_multicast::sim::actor::Hosted;
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::net::Topology;

fn main() {
    let tuning = RingTuning {
        lambda: 2_000,
        ..RingTuning::default()
    };
    let deployment = DLogDeployment::build(&DLogTopology::new(2, tuning));
    println!(
        "dLog: {} logs over {} servers, common ring for multi-appends",
        deployment.group_of_log.len(),
        deployment.servers.len()
    );

    let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(8));
    deployment.spawn_servers(
        &mut cluster,
        CheckpointPolicy {
            interval_us: 0,
            sync: false,
        },
        200 * 1024 * 1024,
    );

    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut cfg = DLogClientConfig::new(client_id, 6);
    cfg.append_bytes = 256;
    cfg.multi_append_per_mille = 200; // 20% atomic multi-appends
    let client = DLogClient::new(cfg, deployment.clone());
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(5));

    println!(
        "completed {} appends in 5 simulated seconds",
        cluster.metrics().counter("dlog/ops")
    );
    // Quiesce before comparing: stop the appender and drain in-flight
    // work. The servers converge once traffic stops (the wbcast
    // engine's subscribers settle on heartbeats rather than in
    // lockstep, so an arbitrary cutoff catches them mid-drain).
    cluster.schedule_crash(Time::from_secs(5), client_proc);
    cluster.run_until(Time::from_secs(6));
    // The three servers agree byte-for-byte on every log. Depending on
    // MRP_ENGINE the deployment spawns the ring engine's checkpointing
    // Replica or the engine-generic EngineReplica — inspect whichever
    // is hosted.
    let logs: Vec<u16> = deployment.group_of_log.keys().copied().collect();
    let snapshot_of = |cluster: &mut Cluster, s: ProcessId, logs: &[u16]| {
        if let Some(server) = cluster.actor_as::<Hosted<Replica<DLogApp>>>(s) {
            let app = server.inner().app();
            let lens: Vec<u64> = logs.iter().map(|&l| app.len_of(l).unwrap_or(0)).collect();
            return (lens, app.snapshot());
        }
        let server = cluster
            .actor_as::<Hosted<EngineReplica<DLogApp>>>(s)
            .expect("server");
        let app = server.inner().app();
        let lens: Vec<u64> = logs.iter().map(|&l| app.len_of(l).unwrap_or(0)).collect();
        (lens, app.snapshot())
    };
    let mut snaps = Vec::new();
    for &s in &deployment.servers.clone() {
        let (lens, snap) = snapshot_of(&mut cluster, s, &logs);
        for (&log, len) in logs.iter().zip(&lens) {
            println!("  server {} log {}: next position {}", s.value(), log, len);
        }
        snaps.push(snap);
    }
    assert!(snaps.windows(2).all(|w| w[0] == w[1]));
    println!("all servers agree on all positions — multi-appends were atomic.");
}
