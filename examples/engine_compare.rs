//! Engine comparison: the same two-group workload ordered by each
//! atomic-multicast engine, selected from configuration at run time.
//!
//! The engine is picked per deployment with `EngineKind` (or the
//! `MRP_ENGINE` environment variable: `multiring` | `wbcast`), and the
//! cluster spawns it through the engine-generic
//! `Cluster::add_engine_actors` — no engine-specific types appear in
//! the workload.
//!
//! Run with: `cargo run --example engine_compare`

use atomic_multicast::amcast::EngineKind;
use atomic_multicast::core::config::{ClusterConfig, RingSpec, RingTuning, Roles};
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId, RingId, Time};
use atomic_multicast::sim::actor::{Actor, ActorCtx, ActorEvent, Outbox};
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::net::Topology;
use bytes::Bytes;
use multiring_paxos::event::Message;
use std::any::Any;

/// Two groups over the same three processes, everyone subscribing to
/// both — the deployment shape where the engines' ordering paths differ
/// most (ring circulation + merge vs sequencer timestamps).
fn config() -> ClusterConfig {
    let tuning = RingTuning {
        lambda: 3_000,
        delta_us: 5_000,
        ..RingTuning::default()
    };
    let mut b = ClusterConfig::builder();
    for ring in 0..2u16 {
        let mut spec = RingSpec::new(RingId::new(ring)).tuning(tuning);
        for p in 0..3u32 {
            // Rotate membership so coordinators/sequencers spread.
            spec = spec.member(ProcessId::new((p + u32::from(ring)) % 3), Roles::ALL);
        }
        b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
    }
    for p in 0..3u32 {
        for g in 0..2u16 {
            b = b.subscribe(ProcessId::new(p), GroupId::new(g));
        }
    }
    b.build().expect("engine_compare config")
}

/// Fires a burst of requests at a proposer.
#[derive(Debug)]
struct Burst {
    target: ProcessId,
    group: GroupId,
    client: ClientId,
    n: u64,
}

impl Actor for Burst {
    fn on_event(&mut self, _now: Time, ev: ActorEvent, out: &mut Outbox, _ctx: &mut ActorCtx<'_>) {
        if ev == ActorEvent::Start {
            for i in 0..self.n {
                out.send(
                    self.target,
                    Message::Request {
                        client: self.client,
                        request: i,
                        groups: vec![self.group],
                        payload: Bytes::from(vec![0u8; 64]),
                    },
                );
            }
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn run(kind: EngineKind) -> u64 {
    let config = config();
    let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(8));
    // The whole engine choice is this one argument.
    cluster.add_engine_actors(&config, kind);
    for g in 0..2u16 {
        let client_proc = ProcessId::new(100 + u32::from(g));
        let client_id = ClientId::new(u64::from(g));
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(u32::from(g)),
                group: GroupId::new(g),
                client: client_id,
                n: 20,
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.start();
    cluster.run_until(Time::from_secs(3));
    cluster.metrics().counter("delivered_values")
}

fn main() {
    // 20 values × 2 groups × 3 subscribers each.
    const EXPECTED: u64 = 20 * 2 * 3;

    let engines: Vec<EngineKind> = match std::env::var("MRP_ENGINE") {
        Ok(name) => vec![name.parse().expect("MRP_ENGINE is `multiring` or `wbcast`")],
        Err(_) => EngineKind::ALL.to_vec(),
    };
    for kind in engines {
        let delivered = run(kind);
        println!("engine {kind:>9}: delivered {delivered} values (expected {EXPECTED})");
        assert_eq!(
            delivered, EXPECTED,
            "engine {kind} lost or duplicated deliveries"
        );
    }
    println!("both engines satisfy the same multicast contract — swap them freely.");
}
